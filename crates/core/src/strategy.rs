//! Fixed-spread liquidation strategies (§5.2).
//!
//! Given a liquidatable position POS = ⟨C, D⟩ (collateral value C, debt value
//! D) in a market with liquidation threshold LT, spread LS and close factor
//! CF, a liquidator can:
//!
//! * follow the **up-to-close-factor** strategy — repay CF·D in a single
//!   liquidation (profit = LS·CF·D), or
//! * follow the **optimal** strategy (Algorithm 2) — first repay just enough
//!   to keep the position *unhealthy*, then liquidate up to the close factor
//!   of the remaining debt in a second liquidation. The repay amounts are
//!   given by Eqs. 6–7, the total profit by Eq. 8 and the relative
//!   improvement over up-to-close-factor by Eq. 9.
//!
//! The functions here work on USD values, matching the paper's formulation;
//! converting to token amounts is the caller's (protocol's) concern.

use serde::{Deserialize, Serialize};

use defi_types::{SignedWad, Wad};

use crate::params::RiskParams;
use crate::position::Position;

/// The outcome of one or two liquidations executed under a strategy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LiquidationOutcome {
    /// Debt value repaid in the first liquidation.
    pub repay_1: Wad,
    /// Debt value repaid in the second liquidation (zero for single-step
    /// strategies).
    pub repay_2: Wad,
    /// Collateral value received across both liquidations (Eq. 1 applied to
    /// each repayment).
    pub collateral_claimed: Wad,
    /// Liquidator profit: collateral claimed − debt repaid.
    pub profit: Wad,
    /// Health factor of the position after all liquidations in the strategy,
    /// `None` if the debt was fully repaid.
    pub final_health_factor: Option<Wad>,
}

impl LiquidationOutcome {
    /// Total debt repaid across the strategy's liquidations.
    pub fn total_repaid(&self) -> Wad {
        self.repay_1.saturating_add(self.repay_2)
    }
}

/// Simulate repaying `repay` of debt value against ⟨C, D⟩ with spread LS,
/// returning the resulting ⟨C′, D′⟩ (the paper's `Liquidate(POS, repay)`
/// helper in Algorithm 2).
pub fn apply_liquidation(collateral: Wad, debt: Wad, repay: Wad, spread: Wad) -> (Wad, Wad) {
    let claimed = Position::collateral_to_claim(repay, spread);
    (
        collateral.saturating_sub(claimed),
        debt.saturating_sub(repay),
    )
}

fn health_factor(collateral: Wad, debt: Wad, lt: Wad) -> Option<Wad> {
    if debt.is_zero() {
        return None;
    }
    collateral.checked_mul(lt).ok()?.checked_div(debt).ok()
}

/// The conventional single-liquidation strategy: repay CF·D.
///
/// Returns `None` when the position is not liquidatable (HF ≥ 1).
pub fn up_to_close_factor_liquidation(
    collateral: Wad,
    debt: Wad,
    params: RiskParams,
) -> Option<LiquidationOutcome> {
    let hf = health_factor(collateral, debt, params.liquidation_threshold)?;
    if hf >= Wad::ONE {
        return None;
    }
    // The repayment is bounded by the close factor and — as every fixed-spread
    // protocol enforces — by the collateral actually available to claim.
    let one_plus_ls = Wad::ONE.saturating_add(params.liquidation_spread);
    let collateral_cap = collateral.checked_div(one_plus_ls).ok()?;
    let repay = debt
        .checked_mul(params.close_factor)
        .ok()?
        .min(collateral_cap);
    let claimed = Position::collateral_to_claim(repay, params.liquidation_spread).min(collateral);
    let (c_after, d_after) = apply_liquidation(collateral, debt, repay, params.liquidation_spread);
    Some(LiquidationOutcome {
        repay_1: repay,
        repay_2: Wad::ZERO,
        collateral_claimed: claimed,
        profit: claimed.saturating_sub(repay),
        final_health_factor: health_factor(c_after, d_after, params.liquidation_threshold),
    })
}

/// Algorithm 2: the optimal two-liquidation strategy.
///
/// The first repayment is the largest amount that keeps the position
/// *unhealthy* (Eq. 6):
///
/// ```text
/// repay₁ = (D − LT·C) / (1 − LT·(1 + LS))
/// ```
///
/// and the second repays the close factor of what remains (Eq. 7). The first
/// repayment is additionally capped at CF·D, which the protocol enforces on
/// every call (the cap only binds for deeply under-collateralized positions).
/// Returns `None` when the position is not liquidatable or the market
/// configuration is unsound (`1 − LT(1+LS) ≤ 0`, Appendix C).
pub fn optimal_liquidation(
    collateral: Wad,
    debt: Wad,
    params: RiskParams,
) -> Option<LiquidationOutcome> {
    let lt = params.liquidation_threshold;
    let ls = params.liquidation_spread;
    let cf = params.close_factor;

    let hf = health_factor(collateral, debt, lt)?;
    if hf >= Wad::ONE {
        return None;
    }
    // Denominator 1 − LT(1+LS) must be positive (Appendix C).
    let lt_times_one_plus_ls = lt.checked_mul(Wad::ONE.saturating_add(ls)).ok()?;
    if lt_times_one_plus_ls >= Wad::ONE {
        return None;
    }
    let denominator = Wad::ONE - lt_times_one_plus_ls;

    // Numerator D − LT·C is positive because the position is liquidatable.
    let lt_c = lt.checked_mul(collateral).ok()?;
    let numerator = debt.saturating_sub(lt_c);
    // Each individual liquidation is still subject to the close factor and to
    // the collateral actually available (both enforced by the protocols),
    // which only matters for deeply under-collateralized positions where
    // Eq. 6 alone would exceed them.
    let one_plus_ls = Wad::ONE.saturating_add(ls);
    let close_factor_cap = debt.checked_mul(cf).ok()?;
    let collateral_cap = collateral.checked_div(one_plus_ls).ok()?;
    let repay_1 = numerator
        .checked_div(denominator)
        .ok()?
        .min(debt)
        .min(close_factor_cap)
        .min(collateral_cap);

    let (c_mid, d_mid) = apply_liquidation(collateral, debt, repay_1, ls);
    let repay_2 = d_mid
        .checked_mul(cf)
        .ok()?
        .min(c_mid.checked_div(one_plus_ls).ok()?);
    let (c_after, d_after) = apply_liquidation(c_mid, d_mid, repay_2, ls);

    let claimed_1 = Position::collateral_to_claim(repay_1, ls).min(collateral);
    let claimed_2 = Position::collateral_to_claim(repay_2, ls).min(c_mid);
    let claimed = claimed_1.saturating_add(claimed_2);
    let total_repaid = repay_1.saturating_add(repay_2);

    Some(LiquidationOutcome {
        repay_1,
        repay_2,
        collateral_claimed: claimed,
        profit: claimed.saturating_sub(total_repaid),
        final_health_factor: health_factor(c_after, d_after, lt),
    })
}

/// Closed-form profit of the optimal strategy (Eq. 8):
/// `LS·CF·D + LS·(1 − CF)·(D − LT·C)/(1 − LT(1+LS))`.
pub fn optimal_profit_closed_form(collateral: Wad, debt: Wad, params: RiskParams) -> Wad {
    let lt = params.liquidation_threshold.to_f64();
    let ls = params.liquidation_spread.to_f64();
    let cf = params.close_factor.to_f64();
    let c = collateral.to_f64();
    let d = debt.to_f64();
    let denom = 1.0 - lt * (1.0 + ls);
    if denom <= 0.0 {
        return Wad::ZERO;
    }
    let profit = ls * cf * d + ls * (1.0 - cf) * (d - lt * c) / denom;
    Wad::from_f64(profit.max(0.0))
}

/// Closed-form relative profit increase of the optimal strategy over
/// up-to-close-factor (Eq. 9): `CF/(1−CF) · (1 − LT·CR)/(1 − LT(1+LS))`,
/// where CR = C/D. Returns `None` for CF = 1 (the ratio is undefined; with a
/// 100 % close factor the two strategies coincide, as on dYdX).
pub fn optimal_profit_increase_rate(collateral: Wad, debt: Wad, params: RiskParams) -> Option<f64> {
    let lt = params.liquidation_threshold.to_f64();
    let ls = params.liquidation_spread.to_f64();
    let cf = params.close_factor.to_f64();
    if cf >= 1.0 || debt.is_zero() {
        return None;
    }
    let cr = collateral.to_f64() / debt.to_f64();
    let denom = 1.0 - lt * (1.0 + ls);
    if denom <= 0.0 {
        return None;
    }
    Some(cf / (1.0 - cf) * (1.0 - lt * cr) / denom)
}

/// Side-by-side comparison of the two strategies on one position, as in the
/// Table 6 case study.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StrategyComparison {
    /// Outcome of the up-to-close-factor strategy.
    pub up_to_close_factor: LiquidationOutcome,
    /// Outcome of the optimal two-step strategy.
    pub optimal: LiquidationOutcome,
    /// Absolute profit advantage of the optimal strategy (optimal − close-factor).
    pub profit_advantage: SignedWad,
    /// Relative advantage predicted by the closed form (Eq. 9), when defined.
    pub predicted_increase_rate: Option<f64>,
}

impl StrategyComparison {
    /// Compare the strategies on a ⟨C, D⟩ position. Returns `None` when the
    /// position is not liquidatable.
    pub fn evaluate(collateral: Wad, debt: Wad, params: RiskParams) -> Option<Self> {
        let base = up_to_close_factor_liquidation(collateral, debt, params)?;
        let optimal = optimal_liquidation(collateral, debt, params)?;
        Some(StrategyComparison {
            up_to_close_factor: base,
            optimal,
            profit_advantage: SignedWad::sub_wads(optimal.profit, base.profit),
            predicted_increase_rate: optimal_profit_increase_rate(collateral, debt, params),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> RiskParams {
        RiskParams::paper_example()
    }

    #[test]
    fn paper_walkthrough_profit() {
        // §3.2.2: collateral 9,900 USD, debt 8,400 USD, LT 0.8, LS 10%, CF 50%.
        // Repaying 4,200 claims 4,620 → profit 420.
        let outcome =
            up_to_close_factor_liquidation(Wad::from_int(9_900), Wad::from_int(8_400), params())
                .unwrap();
        assert_eq!(outcome.repay_1, Wad::from_int(4_200));
        assert_eq!(outcome.collateral_claimed, Wad::from_int(4_620));
        assert_eq!(outcome.profit, Wad::from_int(420));
    }

    #[test]
    fn healthy_position_cannot_be_liquidated() {
        assert!(up_to_close_factor_liquidation(
            Wad::from_int(20_000),
            Wad::from_int(8_400),
            params()
        )
        .is_none());
        assert!(
            optimal_liquidation(Wad::from_int(20_000), Wad::from_int(8_400), params()).is_none()
        );
    }

    #[test]
    fn optimal_first_repay_keeps_position_unhealthy() {
        let c = Wad::from_int(9_900);
        let d = Wad::from_int(8_400);
        let outcome = optimal_liquidation(c, d, params()).unwrap();
        // After repay_1 the position must still be liquidatable (HF < 1, up to rounding).
        let (c1, d1) = apply_liquidation(c, d, outcome.repay_1, params().liquidation_spread);
        let hf = c1
            .checked_mul(params().liquidation_threshold)
            .unwrap()
            .checked_div(d1)
            .unwrap();
        assert!(
            hf <= Wad::ONE.saturating_add(Wad::from_raw(10)),
            "HF after repay_1 is {hf}"
        );
        // And repay_1 should be maximal: repaying 1% more must tip it over 1.
        let bigger = outcome.repay_1.checked_mul(Wad::from_f64(1.01)).unwrap();
        let (c2, d2) = apply_liquidation(c, d, bigger, params().liquidation_spread);
        let hf2 = c2
            .checked_mul(params().liquidation_threshold)
            .unwrap()
            .checked_div(d2)
            .unwrap();
        assert!(hf2 > Wad::ONE);
    }

    #[test]
    fn optimal_beats_up_to_close_factor() {
        let comparison =
            StrategyComparison::evaluate(Wad::from_int(9_900), Wad::from_int(8_400), params())
                .unwrap();
        assert!(
            comparison.optimal.profit > comparison.up_to_close_factor.profit,
            "optimal {} must beat close-factor {}",
            comparison.optimal.profit,
            comparison.up_to_close_factor.profit
        );
        assert!(!comparison.profit_advantage.is_negative());
    }

    #[test]
    fn optimal_matches_closed_form() {
        let c = Wad::from_int(9_900);
        let d = Wad::from_int(8_400);
        let simulated = optimal_liquidation(c, d, params()).unwrap().profit.to_f64();
        let closed = optimal_profit_closed_form(c, d, params()).to_f64();
        assert!(
            (simulated - closed).abs() / closed < 1e-6,
            "simulated {simulated} vs closed-form {closed}"
        );
    }

    #[test]
    fn increase_rate_matches_eq9_shape() {
        let p = params();
        // Lower CR (closer to liquidation boundary from below) → larger increase rate.
        let low_cr =
            optimal_profit_increase_rate(Wad::from_int(9_000), Wad::from_int(8_400), p).unwrap();
        let high_cr =
            optimal_profit_increase_rate(Wad::from_int(10_400), Wad::from_int(8_400), p).unwrap();
        assert!(low_cr > high_cr);
        // With CF = 1 (dYdX) the rate is undefined.
        let dydx = RiskParams::new(0.8, 0.05, 1.0);
        assert!(
            optimal_profit_increase_rate(Wad::from_int(9_000), Wad::from_int(8_400), dydx)
                .is_none()
        );
    }

    #[test]
    fn unsound_configuration_is_rejected() {
        // LT(1+LS) ≥ 1 makes the optimal strategy's denominator non-positive.
        let bad = RiskParams::new(0.95, 0.10, 0.5);
        assert!(optimal_liquidation(Wad::from_int(9_000), Wad::from_int(8_800), bad).is_none());
    }

    #[test]
    fn relative_advantage_agrees_with_predicted_rate() {
        let c = Wad::from_int(9_900);
        let d = Wad::from_int(8_400);
        let comparison = StrategyComparison::evaluate(c, d, params()).unwrap();
        let measured = (comparison.optimal.profit.to_f64()
            - comparison.up_to_close_factor.profit.to_f64())
            / comparison.up_to_close_factor.profit.to_f64();
        let predicted = comparison.predicted_increase_rate.unwrap();
        assert!(
            (measured - predicted).abs() < 1e-6,
            "measured {measured} vs predicted {predicted}"
        );
    }

    #[test]
    fn under_collateralized_position_still_liquidatable_but_capped() {
        // C < D: the claim is capped by the available collateral.
        let c = Wad::from_int(5_000);
        let d = Wad::from_int(8_000);
        let outcome = up_to_close_factor_liquidation(c, d, params()).unwrap();
        assert!(outcome.collateral_claimed <= c);
    }
}
