//! # defi-core
//!
//! The primary contribution of *An Empirical Study of DeFi Liquidations:
//! Incentives, Risks, and Instabilities* (Qin et al., ACM IMC 2021),
//! implemented as a reusable library:
//!
//! * [`position`] — the lending/borrowing terminology of §2.3 as a typed
//!   model: positions with multi-asset collateral and debt, collateralization
//!   ratio (Eq. 2), borrowing capacity (Eq. 3), health factor (Eq. 4), and
//!   the fixed-spread claim rule (Eq. 1).
//! * [`params`] — per-market risk parameters (liquidation threshold,
//!   liquidation spread, close factor) for the studied platforms.
//! * [`mechanism`] — the systematization of §3.2: atomic fixed-spread
//!   liquidation vs. the non-atomic tend–dent auction, with their parameter
//!   sets and an executable model of each.
//! * [`strategy`] — §5.2: the up-to-close-factor strategy and the *optimal*
//!   two-step fixed-spread strategy (Algorithm 2), with the closed-form
//!   profit expressions of Eqs. 6–9.
//! * [`sensitivity`] — Algorithm 1: the liquidatable collateral volume as a
//!   function of a price decline in one currency (Figure 8).
//! * [`comparison`] — §5.1: the monthly profit–volume ratio used to compare
//!   liquidation mechanisms objectively (Figure 9).
//! * [`mitigation`] — §5.2.3: the one-liquidation-per-block mitigation and
//!   the minimum mining power that still makes the optimal strategy pay
//!   (Eqs. 10–12).
//! * [`bad_debt`] — §4.4.2/§4.4.3: Type I / Type II bad-debt and
//!   unprofitable-liquidation classification of a position.
//! * [`config`] — Appendix C: soundness of fixed-spread configurations,
//!   `1 − LT(1 + LS) > 0`.
//!
//! Everything in this crate is pure computation over
//! [`Position`](position::Position) snapshots — no chain, no protocols — so
//! it can be reused against real on-chain data as well as against the
//! simulation substrate shipped in the sibling crates.

#![forbid(unsafe_code)]

pub mod bad_debt;
pub mod comparison;
pub mod config;
pub mod mechanism;
pub mod mitigation;
pub mod params;
pub mod position;
pub mod sensitivity;
pub mod strategy;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::bad_debt::{classify_bad_debt, BadDebtType};
    pub use crate::comparison::ProfitVolumeRatio;
    pub use crate::config::{is_sound_fixed_spread_config, liquidation_improves_health};
    pub use crate::mechanism::{AuctionParams, FixedSpreadParams, LiquidationMechanism};
    pub use crate::mitigation::{optimal_strategy_mining_power_threshold, MitigationAnalysis};
    pub use crate::params::RiskParams;
    pub use crate::position::{CollateralHolding, DebtHolding, Position};
    pub use crate::sensitivity::{liquidatable_collateral, SensitivityCurve};
    pub use crate::strategy::{
        optimal_liquidation, up_to_close_factor_liquidation, LiquidationOutcome, StrategyComparison,
    };
}

pub use prelude::*;
