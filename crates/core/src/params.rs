//! Per-market risk parameters (§2.3 of the paper).

use serde::{Deserialize, Serialize};

use defi_types::{Platform, Token, Wad};

/// The three parameters that govern a fixed-spread liquidation market.
///
/// * `liquidation_threshold` (LT) — percentage at which collateral value
///   counts towards borrowing capacity (Eq. 3).
/// * `liquidation_spread` (LS) — the liquidator's discount/bonus (Eq. 1).
/// * `close_factor` (CF) — the maximum fraction of the debt repayable in one
///   liquidation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RiskParams {
    /// Liquidation threshold LT ∈ (0, 1].
    pub liquidation_threshold: Wad,
    /// Liquidation spread LS ≥ 0.
    pub liquidation_spread: Wad,
    /// Close factor CF ∈ (0, 1].
    pub close_factor: Wad,
}

impl RiskParams {
    /// Construct from floating parameters (convenience for configs/tests).
    pub fn new(liquidation_threshold: f64, liquidation_spread: f64, close_factor: f64) -> Self {
        RiskParams {
            liquidation_threshold: Wad::from_f64(liquidation_threshold),
            liquidation_spread: Wad::from_f64(liquidation_spread),
            close_factor: Wad::from_f64(close_factor),
        }
    }

    /// The worked example of §3.2.2: LT = 0.8, LS = 10 %, CF = 50 %.
    pub fn paper_example() -> Self {
        RiskParams::new(0.80, 0.10, 0.50)
    }

    /// Representative parameters for a platform's flagship market, as
    /// described in §3.3 (Aave 5–15 % spread with 50 % close factor,
    /// Compound 8 % with 50 %, dYdX 5 % with 100 %, MakerDAO 13 % penalty
    /// with auction-based liquidation — modelled as CF = 1 for comparison
    /// purposes).
    pub fn platform_default(platform: Platform) -> Self {
        match platform {
            Platform::AaveV1 => RiskParams::new(0.75, 0.05, 0.50),
            Platform::AaveV2 => RiskParams::new(0.80, 0.05, 0.50),
            Platform::Compound => RiskParams::new(0.75, 0.08, 0.50),
            Platform::DyDx => RiskParams::new(0.80, 0.05, 1.00),
            Platform::MakerDao => RiskParams::new(2.0 / 3.0, 0.13, 1.00),
        }
    }

    /// Platform parameters specialised by collateral token: riskier
    /// collateral gets a lower threshold and a wider spread, mirroring the
    /// per-market configuration of Aave/Compound.
    pub fn platform_market(platform: Platform, collateral: Token) -> Self {
        let mut params = RiskParams::platform_default(platform);
        if platform == Platform::MakerDao {
            return params;
        }
        if collateral.is_stablecoin() {
            params.liquidation_threshold = Wad::from_f64(0.85);
            params.liquidation_spread = Wad::from_f64(0.04);
        } else if !collateral.is_eth() && collateral != Token::WBTC && collateral != Token::renBTC {
            // Long-tail assets.
            params.liquidation_threshold = Wad::from_f64(0.65);
            params.liquidation_spread = Wad::from_f64(match platform {
                Platform::AaveV1 | Platform::AaveV2 => 0.10,
                _ => 0.08,
            });
        }
        params
    }

    /// The "maximum" Aave configuration cited in Table 3 (spread up to 15 %).
    pub fn aave_max_spread() -> Self {
        RiskParams::new(0.80, 0.15, 0.50)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_values() {
        let p = RiskParams::paper_example();
        assert_eq!(p.liquidation_threshold, Wad::from_f64(0.8));
        assert_eq!(p.liquidation_spread, Wad::from_f64(0.1));
        assert_eq!(p.close_factor, Wad::from_f64(0.5));
    }

    #[test]
    fn dydx_allows_full_liquidation() {
        assert_eq!(
            RiskParams::platform_default(Platform::DyDx).close_factor,
            Wad::ONE
        );
        assert_eq!(
            RiskParams::platform_default(Platform::Compound).close_factor,
            Wad::from_f64(0.5)
        );
    }

    #[test]
    fn stablecoin_markets_have_tighter_spread() {
        let usdc = RiskParams::platform_market(Platform::AaveV2, Token::USDC);
        let mana = RiskParams::platform_market(Platform::AaveV2, Token::MANA);
        assert!(usdc.liquidation_spread < mana.liquidation_spread);
        assert!(usdc.liquidation_threshold > mana.liquidation_threshold);
    }

    #[test]
    fn all_default_configs_are_sound() {
        // Appendix C: 1 − LT(1+LS) > 0 must hold for every platform default.
        for platform in Platform::ALL {
            let p = RiskParams::platform_default(platform);
            let lt = p.liquidation_threshold.to_f64();
            let ls = p.liquidation_spread.to_f64();
            assert!(1.0 - lt * (1.0 + ls) > 0.0, "{platform} config unsound");
        }
    }
}
