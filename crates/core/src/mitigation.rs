//! Mitigation of the optimal liquidation strategy (§5.2.3).
//!
//! The proposed mitigation allows only **one liquidation per position per
//! block**. The optimal strategy then needs its two liquidations in two
//! consecutive blocks, and a non-mining liquidator cannot guarantee winning
//! the second one against competitors. For a *mining* liquidator with mining
//! power α, the expected profits are (Eqs. 10–11):
//!
//! ```text
//! E[up-to-close-factor] = α · profit_c
//! E[optimal]            = α · profit_o1 + α² · profit_o2
//! ```
//!
//! so attempting the optimal strategy only pays when (Eq. 12)
//!
//! ```text
//! α > (profit_c − profit_o1) / profit_o2 .
//! ```
//!
//! For the paper's case study this threshold is 99.68 %, i.e. the mitigation
//! effectively removes the incentive.

use serde::{Deserialize, Serialize};

use defi_types::Wad;

use crate::params::RiskParams;
use crate::strategy::{optimal_liquidation, up_to_close_factor_liquidation};

/// The minimum mining power α above which the optimal two-block strategy has
/// higher expected profit than up-to-close-factor, under the
/// one-liquidation-per-block rule (Eq. 12).
///
/// Returns `None` when either strategy is unavailable (position healthy or
/// config unsound) or when the second liquidation yields no profit (the
/// threshold would be infinite — the mitigation fully removes the incentive).
pub fn optimal_strategy_mining_power_threshold(
    collateral: Wad,
    debt: Wad,
    params: RiskParams,
) -> Option<f64> {
    let close_factor = up_to_close_factor_liquidation(collateral, debt, params)?;
    let optimal = optimal_liquidation(collateral, debt, params)?;

    let profit_c = close_factor.profit.to_f64();
    // Profit attribution between the optimal strategy's two liquidations is
    // proportional to the repaid amounts (the spread is constant).
    let total_repaid = optimal.total_repaid().to_f64();
    if total_repaid <= 0.0 {
        return None;
    }
    let profit_total = optimal.profit.to_f64();
    let profit_o1 = profit_total * optimal.repay_1.to_f64() / total_repaid;
    let profit_o2 = profit_total * optimal.repay_2.to_f64() / total_repaid;
    if profit_o2 <= 0.0 {
        return None;
    }
    Some(((profit_c - profit_o1) / profit_o2).clamp(0.0, f64::INFINITY))
}

/// Full mitigation analysis for one position, bundling expected profits as a
/// function of mining power.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MitigationAnalysis {
    /// Profit of the up-to-close-factor strategy (single block).
    pub profit_close_factor: f64,
    /// Profit of the optimal strategy's first liquidation.
    pub profit_optimal_1: f64,
    /// Profit of the optimal strategy's second liquidation.
    pub profit_optimal_2: f64,
    /// Minimum mining power for the optimal strategy to be rational under
    /// the one-liquidation-per-block rule (`None` = never rational).
    pub mining_power_threshold: Option<f64>,
}

impl MitigationAnalysis {
    /// Analyse a ⟨C, D⟩ position. Returns `None` if it is not liquidatable.
    pub fn evaluate(collateral: Wad, debt: Wad, params: RiskParams) -> Option<Self> {
        let close_factor = up_to_close_factor_liquidation(collateral, debt, params)?;
        let optimal = optimal_liquidation(collateral, debt, params)?;
        let total_repaid = optimal.total_repaid().to_f64();
        let profit_total = optimal.profit.to_f64();
        let (p1, p2) = if total_repaid > 0.0 {
            (
                profit_total * optimal.repay_1.to_f64() / total_repaid,
                profit_total * optimal.repay_2.to_f64() / total_repaid,
            )
        } else {
            (0.0, 0.0)
        };
        Some(MitigationAnalysis {
            profit_close_factor: close_factor.profit.to_f64(),
            profit_optimal_1: p1,
            profit_optimal_2: p2,
            mining_power_threshold: optimal_strategy_mining_power_threshold(
                collateral, debt, params,
            ),
        })
    }

    /// Expected profit of the up-to-close-factor strategy for a miner with
    /// power `alpha` (Eq. 10).
    pub fn expected_close_factor(&self, alpha: f64) -> f64 {
        alpha * self.profit_close_factor
    }

    /// Expected profit of the optimal strategy for a miner with power
    /// `alpha` under one-liquidation-per-block (Eq. 11).
    pub fn expected_optimal(&self, alpha: f64) -> f64 {
        alpha * self.profit_optimal_1 + alpha * alpha * self.profit_optimal_2
    }

    /// Whether a miner with power `alpha` is incentivised to attempt the
    /// optimal strategy (E[optimal] > E[up-to-close-factor]).
    pub fn optimal_is_rational(&self, alpha: f64) -> bool {
        self.expected_optimal(alpha) > self.expected_close_factor(alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> RiskParams {
        RiskParams::paper_example()
    }

    #[test]
    fn threshold_exists_and_is_high_for_barely_unhealthy_positions() {
        // A barely-unhealthy position: the first optimal repay is tiny, so the
        // close-factor strategy dominates unless the miner almost surely gets
        // both blocks — exactly the paper's conclusion (threshold ≈ 1).
        let collateral = Wad::from_int(10_480);
        let debt = Wad::from_int(8_400); // HF = 0.998
        let threshold =
            optimal_strategy_mining_power_threshold(collateral, debt, params()).unwrap();
        assert!(
            threshold > 0.95,
            "threshold should be near 1, got {threshold}"
        );
    }

    #[test]
    fn expected_profit_crossover_matches_threshold() {
        let collateral = Wad::from_int(9_900);
        let debt = Wad::from_int(8_400);
        let analysis = MitigationAnalysis::evaluate(collateral, debt, params()).unwrap();
        let threshold = analysis.mining_power_threshold.unwrap();
        if threshold < 1.0 {
            assert!(!analysis.optimal_is_rational((threshold - 0.01).max(0.0)));
            assert!(analysis.optimal_is_rational((threshold + 0.01).min(1.0)));
        } else {
            assert!(!analysis.optimal_is_rational(0.99));
        }
    }

    #[test]
    fn healthy_position_has_no_analysis() {
        assert!(MitigationAnalysis::evaluate(
            Wad::from_int(20_000),
            Wad::from_int(8_000),
            params()
        )
        .is_none());
    }

    #[test]
    fn expected_profit_formulas() {
        let analysis = MitigationAnalysis {
            profit_close_factor: 100.0,
            profit_optimal_1: 10.0,
            profit_optimal_2: 120.0,
            mining_power_threshold: Some(0.75),
        };
        assert!((analysis.expected_close_factor(0.5) - 50.0).abs() < 1e-12);
        assert!((analysis.expected_optimal(0.5) - (5.0 + 30.0)).abs() < 1e-12);
        // Threshold: (100-10)/120 = 0.75; above it optimal wins.
        assert!(analysis.optimal_is_rational(0.8));
        assert!(!analysis.optimal_is_rational(0.7));
    }
}
