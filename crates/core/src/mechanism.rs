//! Systematization of liquidation mechanisms (§3.2).
//!
//! The paper identifies two dominating designs:
//!
//! * the **atomic fixed-spread** liquidation (Aave, Compound, dYdX) — settled
//!   in a single transaction at a pre-determined discount, and
//! * the **non-atomic English auction** (MakerDAO's two-phase tend–dent
//!   auction) — initiated by anyone, open for bids until a bid-duration or
//!   auction-length timeout, then finalised.
//!
//! [`LiquidationMechanism`] captures both with their parameters, and exposes
//! the qualitative properties the paper compares them on (atomicity, close
//! factor granularity, exposure of the liquidator to price risk).

use serde::{Deserialize, Serialize};

use defi_types::{Platform, Wad};

use crate::params::RiskParams;

/// Parameters of an atomic fixed-spread mechanism.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FixedSpreadParams {
    /// Risk parameters (LT, LS, CF).
    pub risk: RiskParams,
}

/// Parameters of a MakerDAO-style tend–dent auction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AuctionParams {
    /// Maximum auction duration from initiation, in blocks
    /// ("auction length condition").
    pub auction_length_blocks: u64,
    /// Maximum time since the last bid before the auction can be finalised,
    /// in blocks ("bid duration condition").
    pub bid_duration_blocks: u64,
    /// Minimum relative increment between consecutive bids (e.g. 0.03 = 3 %).
    pub min_bid_increment: f64,
    /// Liquidation penalty charged to the borrower on top of the recovered
    /// debt (MakerDAO's 13 %).
    pub liquidation_penalty: Wad,
}

impl AuctionParams {
    /// The pre-March-2020 MakerDAO parameters (short 10-minute bid duration)
    /// that proved fragile under congestion.
    pub fn maker_pre_march_2020() -> Self {
        AuctionParams {
            auction_length_blocks: 4 * 240, // ~4 hours
            bid_duration_blocks: 40,        // ~10 minutes
            min_bid_increment: 0.03,
            liquidation_penalty: Wad::from_f64(0.13),
        }
    }

    /// The parameters adopted after the March 2020 incident (6-hour bid
    /// duration / 6-hour auction length), visible as the level shift in
    /// Figure 7.
    pub fn maker_post_march_2020() -> Self {
        AuctionParams {
            auction_length_blocks: 6 * 240, // ~6 hours
            bid_duration_blocks: 6 * 240,   // ~6 hours
            min_bid_increment: 0.03,
            liquidation_penalty: Wad::from_f64(0.13),
        }
    }
}

/// A liquidation mechanism, as systematised in §3.2.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LiquidationMechanism {
    /// Atomic fixed-spread liquidation.
    FixedSpread(FixedSpreadParams),
    /// Non-atomic English (tend–dent) auction.
    Auction(AuctionParams),
}

impl LiquidationMechanism {
    /// The mechanism a platform used during the study window.
    pub fn of_platform(platform: Platform) -> Self {
        match platform {
            Platform::MakerDao => {
                LiquidationMechanism::Auction(AuctionParams::maker_post_march_2020())
            }
            other => LiquidationMechanism::FixedSpread(FixedSpreadParams {
                risk: RiskParams::platform_default(other),
            }),
        }
    }

    /// Whether a liquidation settles atomically in one transaction.
    pub fn is_atomic(&self) -> bool {
        matches!(self, LiquidationMechanism::FixedSpread(_))
    }

    /// Whether the liquidator bears collateral price risk during the
    /// liquidation (auction liquidators do, §4.4.1 and Appendix A; atomic
    /// liquidators can unwind immediately, optionally with a flash loan).
    pub fn liquidator_bears_price_risk(&self) -> bool {
        !self.is_atomic()
    }

    /// Whether the mechanism permits flash-loan funding (requires atomicity).
    pub fn supports_flash_loans(&self) -> bool {
        self.is_atomic()
    }

    /// The close factor restricting a single liquidation, if the mechanism
    /// has one. Auctions "do not specify a close factor and hence offer a
    /// more granular method to liquidate collateral" (§4.4.1).
    pub fn close_factor(&self) -> Option<Wad> {
        match self {
            LiquidationMechanism::FixedSpread(p) => Some(p.risk.close_factor),
            LiquidationMechanism::Auction(_) => None,
        }
    }

    /// A short human-readable description used by reports.
    pub fn describe(&self) -> String {
        match self {
            LiquidationMechanism::FixedSpread(p) => format!(
                "atomic fixed-spread (LT {:.0}%, LS {:.0}%, CF {:.0}%)",
                p.risk.liquidation_threshold.to_f64() * 100.0,
                p.risk.liquidation_spread.to_f64() * 100.0,
                p.risk.close_factor.to_f64() * 100.0
            ),
            LiquidationMechanism::Auction(p) => format!(
                "tend-dent auction (length {} blocks, bid duration {} blocks, penalty {:.0}%)",
                p.auction_length_blocks,
                p.bid_duration_blocks,
                p.liquidation_penalty.to_f64() * 100.0
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn platform_mechanisms_match_paper() {
        assert!(LiquidationMechanism::of_platform(Platform::AaveV2).is_atomic());
        assert!(LiquidationMechanism::of_platform(Platform::Compound).is_atomic());
        assert!(LiquidationMechanism::of_platform(Platform::DyDx).is_atomic());
        assert!(!LiquidationMechanism::of_platform(Platform::MakerDao).is_atomic());
    }

    #[test]
    fn auction_has_no_close_factor() {
        assert!(LiquidationMechanism::of_platform(Platform::MakerDao)
            .close_factor()
            .is_none());
        assert_eq!(
            LiquidationMechanism::of_platform(Platform::DyDx).close_factor(),
            Some(Wad::ONE)
        );
    }

    #[test]
    fn price_risk_and_flash_loans() {
        let auction = LiquidationMechanism::of_platform(Platform::MakerDao);
        let fixed = LiquidationMechanism::of_platform(Platform::Compound);
        assert!(auction.liquidator_bears_price_risk());
        assert!(!fixed.liquidator_bears_price_risk());
        assert!(fixed.supports_flash_loans());
        assert!(!auction.supports_flash_loans());
    }

    #[test]
    fn march_2020_parameter_change_lengthens_bid_duration() {
        let before = AuctionParams::maker_pre_march_2020();
        let after = AuctionParams::maker_post_march_2020();
        assert!(after.bid_duration_blocks > before.bid_duration_blocks * 10);
    }

    #[test]
    fn describe_is_informative() {
        let text = LiquidationMechanism::of_platform(Platform::Compound).describe();
        assert!(text.contains("fixed-spread"));
        let text = LiquidationMechanism::of_platform(Platform::MakerDao).describe();
        assert!(text.contains("auction"));
    }
}
