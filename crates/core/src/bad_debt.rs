//! Bad-debt and unprofitable-liquidation classification (§4.4.2, §4.4.3).
//!
//! * **Type I bad debt** — the position is under-collateralized (CR < 1):
//!   closing it loses money for the borrower or the platform. Typically the
//!   result of overdue liquidations.
//! * **Type II bad debt** — the position is over-collateralized, but the
//!   excess collateral the borrower would recover by closing it does not
//!   cover the transaction fee, so the borrower has no incentive to close it.
//! * **Unprofitable liquidation opportunity** — a liquidatable position whose
//!   liquidation bonus (spread on the repayable amount) does not cover the
//!   liquidator's transaction fee; rational liquidators skip it and it drifts
//!   towards Type I bad debt.

use serde::{Deserialize, Serialize};

use defi_types::Wad;

use crate::position::Position;

/// Bad-debt classification of a position at a given repayment cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BadDebtType {
    /// Not a bad debt: the borrower has an incentive to maintain or close the
    /// position normally.
    None,
    /// Under-collateralized position (CR < 1).
    TypeI,
    /// Over-collateralized, but the recoverable excess does not cover the
    /// transaction fee of closing.
    TypeII,
}

/// Classify a position given the transaction fee (in USD) a borrower must pay
/// to repay and close it.
pub fn classify_bad_debt(position: &Position, close_cost_usd: Wad) -> BadDebtType {
    let collateral = position.total_collateral_value();
    let debt = position.total_debt_value();
    if debt.is_zero() {
        return BadDebtType::None;
    }
    if collateral < debt {
        return BadDebtType::TypeI;
    }
    // Over-collateralized: the borrower recovers (collateral − debt) by
    // closing; if that excess does not cover the fee, closing is irrational.
    let excess = collateral - debt;
    if excess <= close_cost_usd {
        BadDebtType::TypeII
    } else {
        BadDebtType::None
    }
}

/// Whether a *liquidatable* position is an unprofitable liquidation
/// opportunity at the given liquidation transaction fee: the bonus collected
/// by the liquidator (spread × repayable debt, capped by the available
/// collateral) cannot cover the fee.
pub fn is_unprofitable_liquidation(
    position: &Position,
    close_factor: Wad,
    transaction_fee_usd: Wad,
) -> bool {
    if !position.is_liquidatable() {
        return false;
    }
    let debt = position.total_debt_value();
    let repayable = debt.checked_mul(close_factor).unwrap_or(Wad::ZERO);
    // Use the spread of the most valuable collateral market (the one a
    // rational liquidator would seize).
    let spread = position
        .collateral
        .iter()
        .max_by_key(|c| c.value_usd)
        .map(|c| c.liquidation_spread)
        .unwrap_or(Wad::ZERO);
    let claim =
        Position::collateral_to_claim(repayable, spread).min(position.total_collateral_value());
    let bonus = claim.saturating_sub(repayable);
    bonus <= transaction_fee_usd
}

/// Summary row of a bad-debt measurement (one platform, one fee assumption),
/// mirroring Table 2's cells ("count (share %) / collateral USD locked").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct BadDebtSummary {
    /// Number of positions classified as bad debt.
    pub count: u32,
    /// Total number of positions examined.
    pub total_positions: u32,
    /// Collateral value locked in the bad-debt positions (USD).
    pub collateral_locked: Wad,
}

impl BadDebtSummary {
    /// Share of positions that are bad debts, in percent.
    pub fn share_percent(&self) -> f64 {
        if self.total_positions == 0 {
            0.0
        } else {
            100.0 * self.count as f64 / self.total_positions as f64
        }
    }
}

/// Measure Type I and Type II bad debts over a position book at a given
/// closing cost, as in Table 2.
pub fn measure_bad_debts(
    positions: &[Position],
    close_cost_usd: Wad,
) -> (BadDebtSummary, BadDebtSummary) {
    let mut type_1 = BadDebtSummary::default();
    let mut type_2 = BadDebtSummary::default();
    let with_debt: Vec<&Position> = positions
        .iter()
        .filter(|p| !p.total_debt_value().is_zero())
        .collect();
    type_1.total_positions = with_debt.len() as u32;
    type_2.total_positions = with_debt.len() as u32;
    for position in with_debt {
        match classify_bad_debt(position, close_cost_usd) {
            BadDebtType::TypeI => {
                type_1.count += 1;
                type_1.collateral_locked = type_1
                    .collateral_locked
                    .saturating_add(position.total_collateral_value());
            }
            BadDebtType::TypeII => {
                type_2.count += 1;
                type_2.collateral_locked = type_2
                    .collateral_locked
                    .saturating_add(position.total_collateral_value());
            }
            BadDebtType::None => {}
        }
    }
    (type_1, type_2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use defi_types::{Address, Token};

    fn pos(collateral: u64, debt: u64) -> Position {
        Position::simple(
            Address::from_seed(collateral ^ debt),
            Token::ETH,
            Wad::from_int(collateral),
            Token::DAI,
            Wad::from_int(debt),
            Wad::from_f64(0.75),
            Wad::from_f64(0.08),
        )
    }

    #[test]
    fn under_collateralized_is_type_1() {
        assert_eq!(
            classify_bad_debt(&pos(900, 1_000), Wad::from_int(100)),
            BadDebtType::TypeI
        );
    }

    #[test]
    fn tiny_excess_is_type_2() {
        // Excess of 50 USD does not cover a 100 USD close cost.
        assert_eq!(
            classify_bad_debt(&pos(1_050, 1_000), Wad::from_int(100)),
            BadDebtType::TypeII
        );
        // …but it does cover a 10 USD one.
        assert_eq!(
            classify_bad_debt(&pos(1_050, 1_000), Wad::from_int(10)),
            BadDebtType::None
        );
    }

    #[test]
    fn healthy_position_is_not_bad_debt() {
        assert_eq!(
            classify_bad_debt(&pos(5_000, 1_000), Wad::from_int(100)),
            BadDebtType::None
        );
        let no_debt = Position::new(Address::ZERO);
        assert_eq!(
            classify_bad_debt(&no_debt, Wad::from_int(100)),
            BadDebtType::None
        );
    }

    #[test]
    fn type2_threshold_scales_with_fee() {
        // More positions become Type II as fees rise — the paper's Table 2
        // shows counts increasing from the ≤10 USD to the ≤100 USD column.
        let book: Vec<Position> = (1..=100).map(|i| pos(1_000 + i, 1_000)).collect();
        let (_, type2_low) = measure_bad_debts(&book, Wad::from_int(10));
        let (_, type2_high) = measure_bad_debts(&book, Wad::from_int(100));
        assert!(type2_high.count > type2_low.count);
        assert!(type2_high.share_percent() > type2_low.share_percent());
    }

    #[test]
    fn unprofitable_liquidation_detection() {
        // Small liquidatable position: bonus = 8% of repayable 50% of 100 USD
        // = 4 USD < 100 USD fee → unprofitable.
        let small = pos(110, 100);
        assert!(small.is_liquidatable());
        assert!(is_unprofitable_liquidation(
            &small,
            Wad::from_f64(0.5),
            Wad::from_int(100)
        ));
        assert!(!is_unprofitable_liquidation(
            &small,
            Wad::from_f64(0.5),
            Wad::from_f64(1.0)
        ));
        // Large liquidatable position: bonus is thousands of USD → profitable.
        let large = pos(110_000, 100_000);
        assert!(!is_unprofitable_liquidation(
            &large,
            Wad::from_f64(0.5),
            Wad::from_int(100)
        ));
        // A healthy position is never an "unprofitable liquidation".
        let healthy = pos(200, 100);
        assert!(!is_unprofitable_liquidation(
            &healthy,
            Wad::from_f64(0.5),
            Wad::from_int(100)
        ));
    }

    #[test]
    fn measure_bad_debts_counts_and_locked_collateral() {
        let book = vec![pos(900, 1_000), pos(1_020, 1_000), pos(3_000, 1_000)];
        let (t1, t2) = measure_bad_debts(&book, Wad::from_int(100));
        assert_eq!(t1.count, 1);
        assert_eq!(t2.count, 1);
        assert_eq!(t1.total_positions, 3);
        assert_eq!(t1.collateral_locked, Wad::from_int(900));
        assert_eq!(t2.collateral_locked, Wad::from_int(1_020));
    }
}
