//! Objective comparison of liquidation mechanisms (§5.1, Figure 9).
//!
//! "We define the monthly profit-volume ratio as the ratio between the
//! monthly accumulated liquidation profit and the monthly average collateral
//! volume. … The lower the profit-volume ratio is, the better the liquidation
//! protocol is for borrowers."
//!
//! The ratio itself is a tiny formula; the value of this module is the typed
//! record and the aggregation helpers the analytics layer and the Figure 9
//! bench both use, plus the interpretation helpers (which platform a given
//! comparison favours).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use defi_types::{MonthTag, Platform, Wad};

/// One month's observation for one platform.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProfitVolumeRatio {
    /// Month.
    pub month: MonthTag,
    /// Platform.
    pub platform: Platform,
    /// Accumulated liquidation profit over the month (USD).
    pub monthly_profit: Wad,
    /// Average collateral volume locked over the month (USD).
    pub average_collateral_volume: Wad,
    /// Number of liquidations contributing to the profit (used to flag
    /// months with too few events to be representative, as the paper does
    /// for Aave's sparse DAI/ETH market).
    pub liquidation_count: u32,
}

impl ProfitVolumeRatio {
    /// The profit–volume ratio. Returns `None` when the collateral volume is
    /// zero (no market to compare).
    pub fn ratio(&self) -> Option<f64> {
        let volume = self.average_collateral_volume.to_f64();
        if volume <= 0.0 {
            return None;
        }
        Some(self.monthly_profit.to_f64() / volume)
    }

    /// Whether the month has enough liquidations to be considered
    /// representative (the paper discounts Aave's DAI/ETH months because the
    /// "number of DAI/ETH liquidation events on Aave are rare").
    pub fn is_representative(&self, min_liquidations: u32) -> bool {
        self.liquidation_count >= min_liquidations
    }
}

/// A full Figure 9 dataset: per platform, the monthly ratio series.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MechanismComparison {
    /// All observations.
    pub observations: Vec<ProfitVolumeRatio>,
}

impl MechanismComparison {
    /// Create an empty comparison.
    pub fn new() -> Self {
        MechanismComparison::default()
    }

    /// Add an observation.
    pub fn push(&mut self, observation: ProfitVolumeRatio) {
        self.observations.push(observation);
    }

    /// The series for one platform, ordered by month.
    pub fn series(&self, platform: Platform) -> Vec<(MonthTag, f64)> {
        let mut rows: Vec<(MonthTag, f64)> = self
            .observations
            .iter()
            .filter(|o| o.platform == platform)
            .filter_map(|o| o.ratio().map(|r| (o.month, r)))
            .collect();
        rows.sort_by_key(|(m, _)| *m);
        rows
    }

    /// Geometric-mean ratio per platform over representative months. The
    /// geometric mean matches the log-scale comparison of Figure 9 and is
    /// robust to the order-of-magnitude spread between platforms.
    pub fn mean_ratio_by_platform(&self, min_liquidations: u32) -> BTreeMap<Platform, f64> {
        let mut sums: BTreeMap<Platform, (f64, u32)> = BTreeMap::new();
        for obs in &self.observations {
            if !obs.is_representative(min_liquidations) {
                continue;
            }
            if let Some(ratio) = obs.ratio() {
                if ratio > 0.0 {
                    let entry = sums.entry(obs.platform).or_insert((0.0, 0));
                    entry.0 += ratio.ln();
                    entry.1 += 1;
                }
            }
        }
        sums.into_iter()
            .filter(|(_, (_, n))| *n > 0)
            .map(|(platform, (log_sum, n))| (platform, (log_sum / n as f64).exp()))
            .collect()
    }

    /// Median monthly ratio per platform over representative months. The
    /// median is robust to single-month outliers such as the March 2020
    /// MakerDAO incident and the November 2020 Compound oracle incident,
    /// which the paper discusses separately.
    pub fn median_ratio_by_platform(&self, min_liquidations: u32) -> BTreeMap<Platform, f64> {
        let mut samples: BTreeMap<Platform, Vec<f64>> = BTreeMap::new();
        for obs in &self.observations {
            if !obs.is_representative(min_liquidations) {
                continue;
            }
            if let Some(ratio) = obs.ratio() {
                if ratio > 0.0 {
                    samples.entry(obs.platform).or_default().push(ratio);
                }
            }
        }
        samples
            .into_iter()
            .filter(|(_, v)| !v.is_empty())
            .map(|(platform, mut v)| {
                v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
                (platform, v[v.len() / 2])
            })
            .collect()
    }

    /// Rank the platforms from most borrower-friendly (lowest median ratio)
    /// to most liquidator-friendly (highest), over representative months.
    pub fn ranking(&self, min_liquidations: u32) -> Vec<(Platform, f64)> {
        let mut rows: Vec<(Platform, f64)> = self
            .median_ratio_by_platform(min_liquidations)
            .into_iter()
            .collect();
        rows.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        rows
    }

    /// The paper's headline finding restated as a predicate: does the
    /// auction-based platform (MakerDAO) show a lower median ratio than the
    /// fixed-spread platform given, i.e. is the auction more favourable to
    /// borrowers?
    pub fn auction_favours_borrowers_vs(
        &self,
        fixed_spread: Platform,
        min_liquidations: u32,
    ) -> Option<bool> {
        let medians = self.median_ratio_by_platform(min_liquidations);
        let maker = medians.get(&Platform::MakerDao)?;
        let other = medians.get(&fixed_spread)?;
        Some(maker < other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(
        platform: Platform,
        month: (u32, u8),
        profit: u64,
        volume: u64,
        count: u32,
    ) -> ProfitVolumeRatio {
        ProfitVolumeRatio {
            month: MonthTag::new(month.0, month.1),
            platform,
            monthly_profit: Wad::from_int(profit),
            average_collateral_volume: Wad::from_int(volume),
            liquidation_count: count,
        }
    }

    #[test]
    fn ratio_basic() {
        let o = obs(Platform::Compound, (2020, 3), 1_000, 1_000_000, 10);
        assert!((o.ratio().unwrap() - 0.001).abs() < 1e-12);
        let empty = obs(Platform::Compound, (2020, 3), 1_000, 0, 10);
        assert!(empty.ratio().is_none());
    }

    #[test]
    fn ranking_orders_by_mean_ratio() {
        let mut cmp = MechanismComparison::new();
        for month in 1..=6u8 {
            cmp.push(obs(Platform::DyDx, (2020, month), 10_000, 1_000_000, 20));
            cmp.push(obs(Platform::Compound, (2020, month), 2_000, 1_000_000, 20));
            cmp.push(obs(Platform::MakerDao, (2020, month), 500, 1_000_000, 20));
        }
        let ranking = cmp.ranking(1);
        assert_eq!(ranking[0].0, Platform::MakerDao);
        assert_eq!(ranking.last().unwrap().0, Platform::DyDx);
        assert_eq!(
            cmp.auction_favours_borrowers_vs(Platform::Compound, 1),
            Some(true)
        );
        assert_eq!(
            cmp.auction_favours_borrowers_vs(Platform::DyDx, 1),
            Some(true)
        );
    }

    #[test]
    fn sparse_months_are_excluded() {
        let mut cmp = MechanismComparison::new();
        // Aave has one non-representative month with an extreme ratio.
        cmp.push(obs(Platform::AaveV1, (2020, 5), 900_000, 1_000_000, 1));
        cmp.push(obs(Platform::Compound, (2020, 5), 2_000, 1_000_000, 30));
        let means = cmp.mean_ratio_by_platform(5);
        assert!(!means.contains_key(&Platform::AaveV1));
        assert!(means.contains_key(&Platform::Compound));
    }

    #[test]
    fn series_is_sorted_by_month() {
        let mut cmp = MechanismComparison::new();
        cmp.push(obs(Platform::Compound, (2020, 6), 1, 100, 5));
        cmp.push(obs(Platform::Compound, (2020, 2), 1, 100, 5));
        cmp.push(obs(Platform::Compound, (2021, 1), 1, 100, 5));
        let series = cmp.series(Platform::Compound);
        assert_eq!(series.len(), 3);
        assert!(series[0].0 < series[1].0 && series[1].0 < series[2].0);
    }
}
