//! The position model of §2.3: multi-asset collateral and debt, and the
//! quantities defined by Equations 1–4.
//!
//! A [`Position`] is a *valuation snapshot*: every holding carries its USD
//! value at a reference block (the paper normalises all measurements this
//! way), plus the risk parameters of the market it sits in. All downstream
//! algorithms (sensitivity, strategies, bad-debt classification) operate on
//! this snapshot type, which keeps them independent of any particular
//! protocol implementation or data source.

use serde::{Deserialize, Serialize};

use defi_types::{Address, Platform, Token, Wad};

/// One collateral holding inside a position.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CollateralHolding {
    /// Collateral token.
    pub token: Token,
    /// Amount (token units).
    pub amount: Wad,
    /// USD value at the snapshot block.
    pub value_usd: Wad,
    /// Liquidation threshold LT of this market.
    pub liquidation_threshold: Wad,
    /// Liquidation spread LS of this market.
    pub liquidation_spread: Wad,
}

/// One debt holding inside a position.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DebtHolding {
    /// Debt token.
    pub token: Token,
    /// Amount owed (token units).
    pub amount: Wad,
    /// USD value at the snapshot block.
    pub value_usd: Wad,
}

/// A borrowing position: "the collateral and debts are collectively referred
/// to as a position. A position may consist of multiple-cryptocurrency
/// collaterals and debts." (§2.3)
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Position {
    /// Owner of the position.
    pub owner: Address,
    /// Platform the position lives on (informational; the math is identical).
    pub platform: Option<Platform>,
    /// Collateral holdings.
    pub collateral: Vec<CollateralHolding>,
    /// Debt holdings.
    pub debt: Vec<DebtHolding>,
}

impl Position {
    /// An empty position for `owner`.
    pub fn new(owner: Address) -> Self {
        Position {
            owner,
            platform: None,
            collateral: Vec::new(),
            debt: Vec::new(),
        }
    }

    /// Tag the position with its platform.
    pub fn on_platform(mut self, platform: Platform) -> Self {
        self.platform = Some(platform);
        self
    }

    /// Add a collateral holding.
    pub fn with_collateral(mut self, holding: CollateralHolding) -> Self {
        self.collateral.push(holding);
        self
    }

    /// Add a debt holding.
    pub fn with_debt(mut self, holding: DebtHolding) -> Self {
        self.debt.push(holding);
        self
    }

    /// Convenience constructor for the single-collateral, single-debt case
    /// used throughout §5.2 (the position is then exactly the ⟨C, D⟩ pair of
    /// Eq. 5).
    pub fn simple(
        owner: Address,
        collateral_token: Token,
        collateral_value: Wad,
        debt_token: Token,
        debt_value: Wad,
        liquidation_threshold: Wad,
        liquidation_spread: Wad,
    ) -> Self {
        Position::new(owner)
            .with_collateral(CollateralHolding {
                token: collateral_token,
                amount: collateral_value,
                value_usd: collateral_value,
                liquidation_threshold,
                liquidation_spread,
            })
            .with_debt(DebtHolding {
                token: debt_token,
                amount: debt_value,
                value_usd: debt_value,
            })
    }

    /// Total USD value of the collateral: Σ value(collateral_i).
    pub fn total_collateral_value(&self) -> Wad {
        self.collateral
            .iter()
            .fold(Wad::ZERO, |acc, c| acc.saturating_add(c.value_usd))
    }

    /// Total USD value of the debt: Σ value(debt_i).
    pub fn total_debt_value(&self) -> Wad {
        self.debt
            .iter()
            .fold(Wad::ZERO, |acc, d| acc.saturating_add(d.value_usd))
    }

    /// Borrowing capacity (Eq. 3): BC = Σ value(collateral_i) × LT_i.
    pub fn borrowing_capacity(&self) -> Wad {
        self.collateral.iter().fold(Wad::ZERO, |acc, c| {
            acc.saturating_add(
                c.value_usd
                    .checked_mul(c.liquidation_threshold)
                    .unwrap_or(Wad::ZERO),
            )
        })
    }

    /// Collateralization ratio (Eq. 2): CR = Σ collateral / Σ debt.
    /// Returns `None` when the position has no debt (CR is then undefined /
    /// infinite).
    pub fn collateralization_ratio(&self) -> Option<Wad> {
        let debt = self.total_debt_value();
        if debt.is_zero() {
            return None;
        }
        self.total_collateral_value().checked_div(debt).ok()
    }

    /// Health factor (Eq. 4): HF = BC / Σ value(debt_i).
    /// Returns `None` when the position has no debt. A ratio too large for
    /// the fixed-point representation (microscopic debt against real
    /// collateral) saturates to [`Wad::MAX`] — the health factor of an
    /// indebted position is always defined.
    pub fn health_factor(&self) -> Option<Wad> {
        let debt = self.total_debt_value();
        if debt.is_zero() {
            return None;
        }
        Some(
            self.borrowing_capacity()
                .checked_div(debt)
                .unwrap_or(Wad::MAX),
        )
    }

    /// "If HF < 1, the collateral becomes eligible for liquidation." (§2.3)
    pub fn is_liquidatable(&self) -> bool {
        match self.health_factor() {
            Some(hf) => hf < Wad::ONE,
            None => false,
        }
    }

    /// "A debt is under-collateralized if CR < 1" (§2.3). Such positions are
    /// Type I bad debts.
    pub fn is_under_collateralized(&self) -> bool {
        match self.collateralization_ratio() {
            Some(cr) => cr < Wad::ONE,
            None => false,
        }
    }

    /// Whether the position holds collateral in `token`.
    pub fn has_collateral_in(&self, token: Token) -> bool {
        self.collateral
            .iter()
            .any(|c| c.token == token && !c.value_usd.is_zero())
    }

    /// Whether the position owes debt in `token`.
    pub fn has_debt_in(&self, token: Token) -> bool {
        self.debt
            .iter()
            .any(|d| d.token == token && !d.value_usd.is_zero())
    }

    /// USD value of the collateral held in `token` (0 if none).
    pub fn collateral_value_in(&self, token: Token) -> Wad {
        self.collateral
            .iter()
            .filter(|c| c.token == token)
            .fold(Wad::ZERO, |acc, c| acc.saturating_add(c.value_usd))
    }

    /// USD value of the debt owed in `token` (0 if none).
    pub fn debt_value_in(&self, token: Token) -> Wad {
        self.debt
            .iter()
            .filter(|d| d.token == token)
            .fold(Wad::ZERO, |acc, d| acc.saturating_add(d.value_usd))
    }

    /// Value of collateral a liquidator may claim for repaying `repay_value`
    /// of debt (Eq. 1): claim = repay × (1 + LS), using the spread of the
    /// collateral market being seized.
    pub fn collateral_to_claim(repay_value: Wad, liquidation_spread: Wad) -> Wad {
        repay_value
            .checked_mul(Wad::ONE.saturating_add(liquidation_spread))
            .unwrap_or(Wad::MAX)
    }
}

/// The worked fixed-spread example of §3.2.2, reusable from tests, examples
/// and documentation: 3 ETH of collateral at 3,500 USD, LT = 0.8, a debt of
/// 8,400 USDC, followed by an ETH price decline to 3,300 USD.
pub fn paper_walkthrough_position(after_price_decline: bool) -> Position {
    let eth_price = if after_price_decline {
        3_300.0
    } else {
        3_500.0
    };
    let collateral_value = Wad::from_f64(3.0 * eth_price);
    Position::new(Address::from_label("paper-example-borrower"))
        .with_collateral(CollateralHolding {
            token: Token::ETH,
            amount: Wad::from_int(3),
            value_usd: collateral_value,
            liquidation_threshold: Wad::from_f64(0.8),
            liquidation_spread: Wad::from_f64(0.10),
        })
        .with_debt(DebtHolding {
            token: Token::USDC,
            amount: Wad::from_int(8_400),
            value_usd: Wad::from_int(8_400),
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_before_decline_is_healthy() {
        let pos = paper_walkthrough_position(false);
        assert_eq!(pos.total_collateral_value(), Wad::from_int(10_500));
        assert_eq!(pos.borrowing_capacity(), Wad::from_int(8_400));
        // HF = 8,400 / 8,400 = 1.0 — exactly at capacity, not yet liquidatable.
        assert_eq!(pos.health_factor().unwrap(), Wad::ONE);
        assert!(!pos.is_liquidatable());
    }

    #[test]
    fn paper_example_after_decline_is_liquidatable() {
        let pos = paper_walkthrough_position(true);
        assert_eq!(pos.total_collateral_value(), Wad::from_int(9_900));
        assert_eq!(pos.borrowing_capacity(), Wad::from_int(7_920));
        let hf = pos.health_factor().unwrap();
        // Paper: HF = 7,920 / 8,400 ≈ 0.94 < 1.
        assert!(hf < Wad::ONE);
        assert!(hf > Wad::from_f64(0.93) && hf < Wad::from_f64(0.95));
        assert!(pos.is_liquidatable());
        assert!(
            !pos.is_under_collateralized(),
            "still over-collateralized (CR > 1)"
        );
    }

    #[test]
    fn collateral_to_claim_matches_eq1() {
        // Repaying 4,200 USD at a 10% spread claims 4,620 USD of collateral.
        let claim = Position::collateral_to_claim(Wad::from_int(4_200), Wad::from_f64(0.10));
        assert_eq!(claim, Wad::from_int(4_620));
    }

    #[test]
    fn no_debt_means_no_health_factor() {
        let pos = Position::new(Address::ZERO).with_collateral(CollateralHolding {
            token: Token::ETH,
            amount: Wad::from_int(1),
            value_usd: Wad::from_int(3_000),
            liquidation_threshold: Wad::from_f64(0.8),
            liquidation_spread: Wad::from_f64(0.05),
        });
        assert!(pos.health_factor().is_none());
        assert!(pos.collateralization_ratio().is_none());
        assert!(!pos.is_liquidatable());
    }

    #[test]
    fn multi_collateral_position_aggregates() {
        let pos = Position::new(Address::ZERO)
            .with_collateral(CollateralHolding {
                token: Token::ETH,
                amount: Wad::from_int(1),
                value_usd: Wad::from_int(3_000),
                liquidation_threshold: Wad::from_f64(0.8),
                liquidation_spread: Wad::from_f64(0.05),
            })
            .with_collateral(CollateralHolding {
                token: Token::WBTC,
                amount: Wad::from_int(1),
                value_usd: Wad::from_int(45_000),
                liquidation_threshold: Wad::from_f64(0.7),
                liquidation_spread: Wad::from_f64(0.08),
            })
            .with_debt(DebtHolding {
                token: Token::DAI,
                amount: Wad::from_int(20_000),
                value_usd: Wad::from_int(20_000),
            })
            .with_debt(DebtHolding {
                token: Token::USDC,
                amount: Wad::from_int(5_000),
                value_usd: Wad::from_int(5_000),
            });
        assert_eq!(pos.total_collateral_value(), Wad::from_int(48_000));
        assert_eq!(pos.total_debt_value(), Wad::from_int(25_000));
        // BC = 3000*0.8 + 45000*0.7 = 2400 + 31500 = 33900.
        assert_eq!(pos.borrowing_capacity(), Wad::from_int(33_900));
        assert!(!pos.is_liquidatable());
        assert!(pos.has_collateral_in(Token::WBTC));
        assert!(!pos.has_collateral_in(Token::DAI));
        assert_eq!(pos.debt_value_in(Token::DAI), Wad::from_int(20_000));
        assert_eq!(pos.collateral_value_in(Token::ETH), Wad::from_int(3_000));
    }

    #[test]
    fn under_collateralized_detection() {
        let pos = Position::simple(
            Address::ZERO,
            Token::ETH,
            Wad::from_int(900),
            Token::DAI,
            Wad::from_int(1_000),
            Wad::from_f64(0.8),
            Wad::from_f64(0.05),
        );
        assert!(pos.is_under_collateralized());
        assert!(pos.is_liquidatable());
    }
}
