//! Liquidation sensitivity to price declines — Algorithm 1 and Figure 8.
//!
//! "To understand how the lending platforms respond to price declines of
//! different currencies, we quantify the liquidation sensitivity, i.e., the
//! amount of collateral that would be liquidated, if the price of the
//! collateral would decline by up to 100 %." (§4.5.1)
//!
//! [`liquidatable_collateral`] is a direct transcription of Algorithm 1;
//! [`SensitivityCurve`] sweeps the decline percentage to produce the series
//! plotted per collateral asset in Figure 8.

use serde::{Deserialize, Serialize};

use defi_types::{Token, Wad};

use crate::position::Position;

/// Algorithm 1: the liquidatable collateral volume if `target`'s price
/// declines by `decline` (a fraction in `[0, 1]`), over the given set of
/// borrower positions.
///
/// For each borrower holding collateral in the target currency, the
/// collateral value, borrowing capacity and debt value are recomputed under
/// the decline; if the position becomes liquidatable (BC < D), its *declined*
/// collateral value is added to the result.
pub fn liquidatable_collateral(positions: &[Position], target: Token, decline: f64) -> Wad {
    let decline = decline.clamp(0.0, 1.0);
    let decline_wad = Wad::from_f64(decline);
    let mut liquidatable = Wad::ZERO;

    for position in positions {
        if !position.has_collateral_in(target) {
            continue;
        }
        // Collateral value after the decline: Σ C_c − C_ℭ·d.
        let collateral_in_target = position.collateral_value_in(target);
        let collateral_haircut = collateral_in_target
            .checked_mul(decline_wad)
            .unwrap_or(Wad::ZERO);
        let collateral_after = position
            .total_collateral_value()
            .saturating_sub(collateral_haircut);

        // Borrowing capacity after the decline: Σ C_c·LT_c − C_ℭ·LT_ℭ·d.
        let mut capacity_after = position.borrowing_capacity();
        for holding in position.collateral.iter().filter(|c| c.token == target) {
            let haircut = holding
                .value_usd
                .checked_mul(holding.liquidation_threshold)
                .and_then(|v| v.checked_mul(decline_wad))
                .unwrap_or(Wad::ZERO);
            capacity_after = capacity_after.saturating_sub(haircut);
        }

        // Debt value after the decline (debt in the target currency also
        // deflates): Σ D_c − D_ℭ·d.
        let debt_haircut = position
            .debt_value_in(target)
            .checked_mul(decline_wad)
            .unwrap_or(Wad::ZERO);
        let debt_after = position.total_debt_value().saturating_sub(debt_haircut);

        if capacity_after < debt_after {
            liquidatable = liquidatable.saturating_add(collateral_after);
        }
    }
    liquidatable
}

/// One point of a sensitivity curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SensitivityPoint {
    /// Price decline (fraction, 0.0–1.0).
    pub decline: f64,
    /// Liquidatable collateral value (USD) at that decline.
    pub liquidatable: Wad,
}

/// The Figure 8 series for one collateral asset on one platform: liquidatable
/// collateral as a function of the price decline percentage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensitivityCurve {
    /// The collateral asset whose price declines.
    pub token: Token,
    /// Sampled points, ordered by increasing decline.
    pub points: Vec<SensitivityPoint>,
}

impl SensitivityCurve {
    /// Sweep the decline from 0 to 100 % in `steps` increments over the
    /// position book.
    pub fn compute(positions: &[Position], token: Token, steps: usize) -> Self {
        let steps = steps.max(1);
        let points = (0..=steps)
            .map(|i| {
                let decline = i as f64 / steps as f64;
                SensitivityPoint {
                    decline,
                    liquidatable: liquidatable_collateral(positions, token, decline),
                }
            })
            .collect();
        SensitivityCurve { token, points }
    }

    /// The liquidatable collateral at the decline closest to `decline`.
    pub fn at(&self, decline: f64) -> Wad {
        self.points
            .iter()
            .min_by(|a, b| {
                (a.decline - decline)
                    .abs()
                    .partial_cmp(&(b.decline - decline).abs())
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|p| p.liquidatable)
            .unwrap_or(Wad::ZERO)
    }

    /// The maximum liquidatable collateral across the sweep (the curve's
    /// plateau at 100 % decline).
    pub fn max(&self) -> Wad {
        self.points
            .iter()
            .map(|p| p.liquidatable)
            .max()
            .unwrap_or(Wad::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::position::{CollateralHolding, DebtHolding};
    use defi_types::Address;

    fn eth_position(collateral_usd: u64, debt_usd: u64, lt: f64) -> Position {
        Position::new(Address::from_seed(collateral_usd ^ debt_usd))
            .with_collateral(CollateralHolding {
                token: Token::ETH,
                amount: Wad::from_int(collateral_usd / 3_000),
                value_usd: Wad::from_int(collateral_usd),
                liquidation_threshold: Wad::from_f64(lt),
                liquidation_spread: Wad::from_f64(0.05),
            })
            .with_debt(DebtHolding {
                token: Token::DAI,
                amount: Wad::from_int(debt_usd),
                value_usd: Wad::from_int(debt_usd),
            })
    }

    #[test]
    fn healthy_position_needs_a_decline_to_become_liquidatable() {
        // BC = 10,000 * 0.8 = 8,000 > 6,000 debt → healthy at 0 % decline.
        let positions = vec![eth_position(10_000, 6_000, 0.8)];
        assert_eq!(
            liquidatable_collateral(&positions, Token::ETH, 0.0),
            Wad::ZERO
        );
        // At 30%: collateral 7,000, BC 5,600 < 6,000 → liquidatable, counted
        // at the declined collateral value 7,000.
        assert_eq!(
            liquidatable_collateral(&positions, Token::ETH, 0.30),
            Wad::from_int(7_000)
        );
    }

    #[test]
    fn decline_threshold_matches_closed_form() {
        // Position becomes liquidatable when (1-d)·C·LT < D ⇒ d > 1 − D/(C·LT).
        let positions = vec![eth_position(10_000, 6_000, 0.8)];
        let critical = 1.0 - 6_000.0 / (10_000.0 * 0.8); // 0.25
        let just_below = liquidatable_collateral(&positions, Token::ETH, critical - 0.01);
        let just_above = liquidatable_collateral(&positions, Token::ETH, critical + 0.01);
        assert_eq!(just_below, Wad::ZERO);
        assert!(!just_above.is_zero());
    }

    #[test]
    fn unrelated_token_decline_has_no_effect() {
        let positions = vec![eth_position(10_000, 6_000, 0.8)];
        assert_eq!(
            liquidatable_collateral(&positions, Token::WBTC, 0.9),
            Wad::ZERO
        );
    }

    #[test]
    fn debt_in_declining_token_offsets() {
        // Collateral ETH, debt also ETH-denominated: a decline shrinks both,
        // so the position never becomes liquidatable from this decline alone.
        let position = Position::new(Address::ZERO)
            .with_collateral(CollateralHolding {
                token: Token::ETH,
                amount: Wad::from_int(10),
                value_usd: Wad::from_int(30_000),
                liquidation_threshold: Wad::from_f64(0.8),
                liquidation_spread: Wad::from_f64(0.05),
            })
            .with_debt(DebtHolding {
                token: Token::ETH,
                amount: Wad::from_int(7),
                value_usd: Wad::from_int(21_000),
            });
        for decline in [0.1, 0.5, 0.9] {
            assert_eq!(
                liquidatable_collateral(std::slice::from_ref(&position), Token::ETH, decline),
                Wad::ZERO,
                "decline {decline}"
            );
        }
    }

    #[test]
    fn curve_is_monotone_in_liquidated_positions() {
        let positions: Vec<Position> = (1..=20)
            .map(|i| eth_position(10_000, 4_000 + i * 200, 0.8))
            .collect();
        let curve = SensitivityCurve::compute(&positions, Token::ETH, 50);
        assert_eq!(curve.points.len(), 51);
        // The number of liquidatable positions grows with the decline, and the
        // curve should rise towards its maximum before the per-position value
        // decay dominates; its maximum must be positive.
        assert!(!curve.max().is_zero());
        assert!(curve.at(0.0) <= curve.max());
        // At a 100% decline every ETH-collateralised position is liquidatable,
        // but the counted collateral value is zero (fully declined).
        let last = curve.points.last().unwrap();
        assert_eq!(last.decline, 1.0);
    }

    #[test]
    fn multi_collateral_positions_resist_single_token_declines() {
        // The paper observes Aave V2 is more stable because its users hold
        // multi-token collateral. Reproduce in miniature: same totals, one
        // diversified and one concentrated position.
        let concentrated = eth_position(10_000, 6_000, 0.8);
        let diversified = Position::new(Address::from_seed(99))
            .with_collateral(CollateralHolding {
                token: Token::ETH,
                amount: Wad::from_int(1),
                value_usd: Wad::from_int(5_000),
                liquidation_threshold: Wad::from_f64(0.8),
                liquidation_spread: Wad::from_f64(0.05),
            })
            .with_collateral(CollateralHolding {
                token: Token::USDC,
                amount: Wad::from_int(5_000),
                value_usd: Wad::from_int(5_000),
                liquidation_threshold: Wad::from_f64(0.8),
                liquidation_spread: Wad::from_f64(0.05),
            })
            .with_debt(DebtHolding {
                token: Token::DAI,
                amount: Wad::from_int(6_000),
                value_usd: Wad::from_int(6_000),
            });
        let decline = 0.40;
        let concentrated_hit = liquidatable_collateral(&[concentrated], Token::ETH, decline);
        let diversified_hit = liquidatable_collateral(&[diversified], Token::ETH, decline);
        assert!(!concentrated_hit.is_zero());
        assert!(diversified_hit.is_zero());
    }
}
