//! Reasonable fixed-spread configurations (Appendix C).
//!
//! A fixed-spread liquidation should *increase* the health factor of the
//! position it touches — otherwise liquidations spiral. Appendix C derives
//! two facts:
//!
//! 1. a liquidation improves the health factor of a position only if
//!    `1 + LS < C/D` (it can therefore never help an under-collateralized
//!    position), and
//! 2. for over-collateralized liquidatable positions, the prerequisite on
//!    the market parameters is `1 − LT·(1 + LS) > 0`.

use defi_types::Wad;

use crate::params::RiskParams;

/// Appendix C prerequisite: `1 − LT·(1 + LS) > 0`.
///
/// Only configurations satisfying this can guarantee that a fixed-spread
/// liquidation increases the health factor of an over-collateralized
/// liquidatable position.
pub fn is_sound_fixed_spread_config(params: RiskParams) -> bool {
    let lt = params.liquidation_threshold;
    let ls = params.liquidation_spread;
    match lt.checked_mul(Wad::ONE.saturating_add(ls)) {
        Ok(product) => product < Wad::ONE,
        Err(_) => false,
    }
}

/// Appendix C, Eq. 16: a liquidation (of any size) increases the health
/// factor of ⟨C, D⟩ only when `1 + LS < C/D`.
pub fn liquidation_improves_health(collateral: Wad, debt: Wad, liquidation_spread: Wad) -> bool {
    if debt.is_zero() {
        return false;
    }
    let cr = match collateral.checked_div(debt) {
        Ok(cr) => cr,
        Err(_) => return false,
    };
    Wad::ONE.saturating_add(liquidation_spread) < cr
}

/// Health factor after repaying `repay` of debt value (Eq. 14):
/// `HF′ = (C − repay·(1+LS))·LT / (D − repay)`. Returns `None` when the debt
/// is fully repaid.
pub fn health_factor_after_liquidation(
    collateral: Wad,
    debt: Wad,
    repay: Wad,
    params: RiskParams,
) -> Option<Wad> {
    if repay >= debt {
        return None;
    }
    let claimed = repay
        .checked_mul(Wad::ONE.saturating_add(params.liquidation_spread))
        .ok()?;
    let c_after = collateral.saturating_sub(claimed);
    let d_after = debt - repay;
    c_after
        .checked_mul(params.liquidation_threshold)
        .ok()?
        .checked_div(d_after)
        .ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn platform_defaults_are_sound() {
        use defi_types::Platform;
        for platform in Platform::ALL {
            assert!(
                is_sound_fixed_spread_config(RiskParams::platform_default(platform)),
                "{platform}"
            );
        }
    }

    #[test]
    fn unsound_config_detected() {
        // LT 0.95 with LS 10%: 0.95 * 1.10 = 1.045 ≥ 1.
        assert!(!is_sound_fixed_spread_config(RiskParams::new(
            0.95, 0.10, 0.5
        )));
        // Boundary: LT(1+LS) exactly 1 is not sound (strict inequality).
        assert!(!is_sound_fixed_spread_config(RiskParams::new(
            0.8, 0.25, 0.5
        )));
    }

    #[test]
    fn under_collateralized_never_improves() {
        // C/D < 1 ⇒ 1 + LS < C/D impossible for LS ≥ 0.
        assert!(!liquidation_improves_health(
            Wad::from_int(900),
            Wad::from_int(1_000),
            Wad::from_f64(0.05)
        ));
    }

    #[test]
    fn liquidation_improves_health_iff_eq16() {
        // C/D = 1.18, LS = 10% → improves; LS = 20% → does not.
        let c = Wad::from_int(11_800);
        let d = Wad::from_int(10_000);
        assert!(liquidation_improves_health(c, d, Wad::from_f64(0.10)));
        assert!(!liquidation_improves_health(c, d, Wad::from_f64(0.20)));
    }

    #[test]
    fn hf_after_liquidation_rises_for_sound_config() {
        let params = RiskParams::paper_example();
        let c = Wad::from_int(9_900);
        let d = Wad::from_int(8_400);
        let hf_before = c
            .checked_mul(params.liquidation_threshold)
            .unwrap()
            .checked_div(d)
            .unwrap();
        let hf_after = health_factor_after_liquidation(c, d, Wad::from_int(4_200), params).unwrap();
        assert!(hf_after > hf_before);
    }

    #[test]
    fn full_repayment_has_no_health_factor() {
        let params = RiskParams::paper_example();
        assert!(health_factor_after_liquidation(
            Wad::from_int(9_900),
            Wad::from_int(8_400),
            Wad::from_int(8_400),
            params
        )
        .is_none());
    }
}
