//! A registry of pools with simple routing.
//!
//! Liquidator agents ask the [`Dex`] for a quote from the seized collateral
//! token into the debt token; if no direct pair exists the route goes through
//! ETH (the deepest pairs on mainnet are almost always X/ETH and ETH/stable).
//!
//! Pool reserves live on the [`Ledger`] (each pool's own account holds them),
//! so a swap executed inside a transaction scope is journaled with the
//! ledger checkpoint and reverts with the transaction — no caller has to
//! snapshot and restore the AMM around a revert.

use serde::{Deserialize, Serialize};

use defi_chain::Ledger;
use defi_types::{Address, Token, Wad};

use crate::pool::{AmmError, ConstantProductPool, PoolConfig};

/// A quote for a (possibly two-hop) swap.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SwapQuote {
    /// Input token.
    pub token_in: Token,
    /// Output token.
    pub token_out: Token,
    /// Input amount.
    pub amount_in: Wad,
    /// Expected output amount.
    pub amount_out: Wad,
    /// Whether the route goes through ETH.
    pub via_eth: bool,
    /// Estimated relative price impact of the whole route.
    pub price_impact: f64,
}

/// The decentralized exchange: a set of constant-product pools.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Dex {
    pools: Vec<ConstantProductPool>,
}

impl Dex {
    /// An empty exchange.
    pub fn new() -> Self {
        Dex::default()
    }

    /// Add a pool.
    pub fn add_pool(&mut self, pool: ConstantProductPool) {
        self.pools.push(pool);
    }

    /// Number of pools.
    pub fn pool_count(&self) -> usize {
        self.pools.len()
    }

    /// Find the pool trading exactly this pair.
    pub fn pool_for(&self, a: Token, b: Token) -> Option<&ConstantProductPool> {
        self.pools
            .iter()
            .find(|p| p.supports(a) && p.supports(b) && a != b)
    }

    /// Seed a standard pool with reserves sized so its spot price matches the
    /// given USD prices and the given USD depth per side.
    pub fn seed_standard_pool(
        &mut self,
        ledger: &mut Ledger,
        token_a: Token,
        price_a_usd: f64,
        token_b: Token,
        price_b_usd: f64,
        depth_usd: f64,
    ) {
        let mut pool = ConstantProductPool::new(
            Address::from_label(&format!("dex-{}-{}", token_a.symbol(), token_b.symbol())),
            PoolConfig::standard(token_a, token_b),
        );
        let amount_a = Wad::from_f64(depth_usd / price_a_usd.max(1e-12));
        let amount_b = Wad::from_f64(depth_usd / price_b_usd.max(1e-12));
        pool.seed_liquidity(ledger, amount_a, amount_b);
        self.add_pool(pool);
    }

    /// Quote a swap, routing through ETH when no direct pair exists.
    pub fn quote(
        &self,
        ledger: &Ledger,
        token_in: Token,
        token_out: Token,
        amount_in: Wad,
    ) -> Result<SwapQuote, AmmError> {
        if token_in == token_out {
            return Ok(SwapQuote {
                token_in,
                token_out,
                amount_in,
                amount_out: amount_in,
                via_eth: false,
                price_impact: 0.0,
            });
        }
        if let Some(pool) = self.pool_for(token_in, token_out) {
            let amount_out = pool.quote_out(ledger, token_in, amount_in)?;
            let price_impact = pool.price_impact(ledger, token_in, amount_in)?;
            return Ok(SwapQuote {
                token_in,
                token_out,
                amount_in,
                amount_out,
                via_eth: false,
                price_impact,
            });
        }
        // Two-hop route through ETH.
        let first = self
            .pool_for(token_in, Token::ETH)
            .ok_or(AmmError::UnsupportedToken(token_in))?;
        let second = self
            .pool_for(Token::ETH, token_out)
            .ok_or(AmmError::UnsupportedToken(token_out))?;
        let eth_out = first.quote_out(ledger, token_in, amount_in)?;
        let amount_out = second.quote_out(ledger, Token::ETH, eth_out)?;
        let impact = first.price_impact(ledger, token_in, amount_in)?
            + second.price_impact(ledger, Token::ETH, eth_out)?;
        Ok(SwapQuote {
            token_in,
            token_out,
            amount_in,
            amount_out,
            via_eth: true,
            price_impact: impact.min(1.0),
        })
    }

    /// Execute a swap (routing through ETH when necessary); returns the
    /// output amount credited to `trader`. Reserve mutations are ledger
    /// transfers, so inside a transaction scope the whole route reverts
    /// atomically with the checkpoint.
    pub fn swap(
        &self,
        ledger: &mut Ledger,
        trader: Address,
        token_in: Token,
        token_out: Token,
        amount_in: Wad,
    ) -> Result<Wad, AmmError> {
        if token_in == token_out {
            return Ok(amount_in);
        }
        if let Some(pool) = self.pool_for(token_in, token_out) {
            return pool.swap(ledger, trader, token_in, amount_in);
        }
        // Two hops: in -> ETH -> out.
        let eth_out = self
            .pool_for(token_in, Token::ETH)
            .ok_or(AmmError::UnsupportedToken(token_in))?
            .swap(ledger, trader, token_in, amount_in)?;
        self.pool_for(Token::ETH, token_out)
            .ok_or(AmmError::UnsupportedToken(token_out))?
            .swap(ledger, trader, Token::ETH, eth_out)
    }

    /// Iterate over the pools.
    pub fn pools(&self) -> impl Iterator<Item = &ConstantProductPool> {
        self.pools.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Dex, Ledger) {
        let mut dex = Dex::new();
        let mut ledger = Ledger::new();
        dex.seed_standard_pool(
            &mut ledger,
            Token::ETH,
            3_000.0,
            Token::DAI,
            1.0,
            30_000_000.0,
        );
        dex.seed_standard_pool(
            &mut ledger,
            Token::WBTC,
            45_000.0,
            Token::ETH,
            3_000.0,
            20_000_000.0,
        );
        (dex, ledger)
    }

    #[test]
    fn direct_quote_uses_single_pool() {
        let (dex, ledger) = setup();
        let quote = dex
            .quote(&ledger, Token::ETH, Token::DAI, Wad::from_int(10))
            .unwrap();
        assert!(!quote.via_eth);
        // ~3,000 DAI per ETH minus fee/impact.
        assert!(quote.amount_out > Wad::from_int(29_000));
        assert!(quote.amount_out < Wad::from_int(30_000));
    }

    #[test]
    fn two_hop_quote_routes_via_eth() {
        let (dex, ledger) = setup();
        let quote = dex
            .quote(&ledger, Token::WBTC, Token::DAI, Wad::from_int(1))
            .unwrap();
        assert!(quote.via_eth);
        // 1 WBTC ≈ 45,000 DAI minus two fees and impact.
        assert!(quote.amount_out > Wad::from_int(43_000));
        assert!(quote.amount_out < Wad::from_int(45_000));
    }

    #[test]
    fn same_token_is_identity() {
        let (dex, ledger) = setup();
        let quote = dex
            .quote(&ledger, Token::DAI, Token::DAI, Wad::from_int(5))
            .unwrap();
        assert_eq!(quote.amount_out, Wad::from_int(5));
        assert_eq!(quote.price_impact, 0.0);
    }

    #[test]
    fn swap_executes_two_hops() {
        let (dex, mut ledger) = setup();
        let trader = Address::from_seed(42);
        ledger.mint(trader, Token::WBTC, Wad::from_int(2));
        let out = dex
            .swap(
                &mut ledger,
                trader,
                Token::WBTC,
                Token::DAI,
                Wad::from_int(2),
            )
            .unwrap();
        assert_eq!(ledger.balance(trader, Token::DAI), out);
        assert_eq!(ledger.balance(trader, Token::WBTC), Wad::ZERO);
        assert_eq!(
            ledger.balance(trader, Token::ETH),
            Wad::ZERO,
            "intermediate ETH fully consumed"
        );
        assert!(out > Wad::from_int(85_000));
    }

    #[test]
    fn missing_pair_is_an_error() {
        let (dex, ledger) = setup();
        assert!(dex
            .quote(&ledger, Token::MKR, Token::DAI, Wad::from_int(1))
            .is_err());
    }

    #[test]
    fn quote_matches_swap_output() {
        let (dex, mut ledger) = setup();
        let trader = Address::from_seed(7);
        ledger.mint(trader, Token::ETH, Wad::from_int(3));
        let quote = dex
            .quote(&ledger, Token::ETH, Token::DAI, Wad::from_int(3))
            .unwrap();
        let out = dex
            .swap(
                &mut ledger,
                trader,
                Token::ETH,
                Token::DAI,
                Wad::from_int(3),
            )
            .unwrap();
        assert_eq!(quote.amount_out, out);
    }

    /// A swap inside a reverting ledger checkpoint rolls the pool reserves
    /// back wherever it happens — here on a plain (non-flash-loan) path,
    /// the case the engine used to have no hand-rolled snapshot for.
    #[test]
    fn reverted_swap_rolls_back_pool_reserves() {
        let (dex, mut ledger) = setup();
        let trader = Address::from_seed(77);
        ledger.mint(trader, Token::ETH, Wad::from_int(25));
        let pool = dex.pool_for(Token::ETH, Token::DAI).unwrap();
        let reserves_before = pool.reserves(&ledger);
        let quote_before = dex
            .quote(&ledger, Token::ETH, Token::DAI, Wad::from_int(5))
            .unwrap();

        ledger.begin_checkpoint();
        let out = dex
            .swap(
                &mut ledger,
                trader,
                Token::ETH,
                Token::DAI,
                Wad::from_int(25),
            )
            .unwrap();
        assert!(!out.is_zero());
        assert_ne!(pool.reserves(&ledger), reserves_before);
        ledger.revert_checkpoint();

        // Reserves, trader balances and quotes are exactly the pre-swap state.
        assert_eq!(pool.reserves(&ledger), reserves_before);
        assert_eq!(ledger.balance(trader, Token::ETH), Wad::from_int(25));
        assert_eq!(ledger.balance(trader, Token::DAI), Wad::ZERO);
        let quote_after = dex
            .quote(&ledger, Token::ETH, Token::DAI, Wad::from_int(5))
            .unwrap();
        assert_eq!(quote_after.amount_out, quote_before.amount_out);
    }
}
