//! # defi-amm
//!
//! A Uniswap-V2-style constant-product automated market maker.
//!
//! The paper's liquidators rarely want to *hold* the collateral they seize:
//! the canonical flash-loan liquidation flow (§4.4.4) swaps the purchased
//! collateral back into the debt currency on a DEX before repaying the flash
//! loan, all within one transaction. This crate provides that DEX. It is also
//! an example of the *on-chain* price-oracle style mentioned in §2.2.1
//! (spot prices that are manipulable within a transaction).
//!
//! The implementation follows the x·y=k formula with a configurable fee,
//! settles balances through the shared [`Ledger`](defi_chain::Ledger), and
//! exposes price-impact estimates so liquidator agents can decide whether a
//! liquidation remains profitable after slippage.

#![forbid(unsafe_code)]

pub mod dex;
pub mod pool;

pub use dex::{Dex, SwapQuote};
pub use pool::{AmmError, ConstantProductPool, PoolConfig};
