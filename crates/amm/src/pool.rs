//! The constant-product pool.

use serde::{Deserialize, Serialize};

use defi_chain::Ledger;
use defi_types::{Address, Token, Wad};

/// Errors returned by pool operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AmmError {
    /// The pool does not trade the requested token.
    UnsupportedToken(Token),
    /// The requested output exceeds the pool's reserves.
    InsufficientLiquidity,
    /// The swap input amount is zero.
    ZeroAmount,
    /// A ledger transfer failed (caller lacks balance).
    Ledger(String),
}

impl core::fmt::Display for AmmError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AmmError::UnsupportedToken(t) => write!(f, "pool does not trade {t}"),
            AmmError::InsufficientLiquidity => write!(f, "insufficient pool liquidity"),
            AmmError::ZeroAmount => write!(f, "swap amount must be positive"),
            AmmError::Ledger(msg) => write!(f, "ledger error: {msg}"),
        }
    }
}

impl std::error::Error for AmmError {}

/// Pool construction parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PoolConfig {
    /// First token of the pair.
    pub token_a: Token,
    /// Second token of the pair.
    pub token_b: Token,
    /// Swap fee in basis points (Uniswap V2 charges 30 bps).
    pub fee_bps: u32,
}

impl PoolConfig {
    /// A pair with the standard 0.3 % fee.
    pub fn standard(token_a: Token, token_b: Token) -> Self {
        PoolConfig {
            token_a,
            token_b,
            fee_bps: 30,
        }
    }
}

/// A single x·y=k pool.
///
/// The pool carries no reserve state of its own: its reserves *are* its
/// ledger account's balances, so every reserve mutation is journaled with
/// the ledger checkpoint and a swap inside a reverting transaction rolls
/// back atomically — wherever it happens — instead of relying on callers to
/// snapshot and restore the AMM by hand.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConstantProductPool {
    /// The pool's own account on the ledger (holds the reserves).
    pub address: Address,
    config: PoolConfig,
}

impl ConstantProductPool {
    /// Create a pool; reserves start at zero until liquidity is seeded.
    pub fn new(address: Address, config: PoolConfig) -> Self {
        ConstantProductPool { address, config }
    }

    /// The pool configuration.
    pub fn config(&self) -> PoolConfig {
        self.config
    }

    /// Current reserves as `(token_a reserve, token_b reserve)` — the pool
    /// account's ledger balances.
    pub fn reserves(&self, ledger: &Ledger) -> (Wad, Wad) {
        (
            ledger.balance(self.address, self.config.token_a),
            ledger.balance(self.address, self.config.token_b),
        )
    }

    /// Whether the pool trades `token`.
    pub fn supports(&self, token: Token) -> bool {
        token == self.config.token_a || token == self.config.token_b
    }

    /// The other side of the pair.
    pub fn counterpart(&self, token: Token) -> Result<Token, AmmError> {
        if token == self.config.token_a {
            Ok(self.config.token_b)
        } else if token == self.config.token_b {
            Ok(self.config.token_a)
        } else {
            Err(AmmError::UnsupportedToken(token))
        }
    }

    fn reserve_of(&self, ledger: &Ledger, token: Token) -> Result<Wad, AmmError> {
        if token == self.config.token_a || token == self.config.token_b {
            Ok(ledger.balance(self.address, token))
        } else {
            Err(AmmError::UnsupportedToken(token))
        }
    }

    /// Seed liquidity directly (scenario setup): mints the reserves into the
    /// pool's ledger account.
    pub fn seed_liquidity(&mut self, ledger: &mut Ledger, amount_a: Wad, amount_b: Wad) {
        ledger.mint(self.address, self.config.token_a, amount_a);
        ledger.mint(self.address, self.config.token_b, amount_b);
    }

    /// Marginal (spot) price of `token` denominated in its counterpart:
    /// reserves_out / reserves_in. Returns `None` when the pool is empty.
    pub fn spot_price(&self, ledger: &Ledger, token: Token) -> Option<Wad> {
        let input_reserve = self.reserve_of(ledger, token).ok()?;
        let output_reserve = self
            .reserve_of(ledger, self.counterpart(token).ok()?)
            .ok()?;
        if input_reserve.is_zero() {
            return None;
        }
        output_reserve.checked_div(input_reserve).ok()
    }

    /// Output amount for a given input under x·y=k with the pool fee,
    /// without executing the swap.
    pub fn quote_out(
        &self,
        ledger: &Ledger,
        token_in: Token,
        amount_in: Wad,
    ) -> Result<Wad, AmmError> {
        if amount_in.is_zero() {
            return Err(AmmError::ZeroAmount);
        }
        let token_out = self.counterpart(token_in)?;
        let reserve_in = self.reserve_of(ledger, token_in)?;
        let reserve_out = self.reserve_of(ledger, token_out)?;
        if reserve_in.is_zero() || reserve_out.is_zero() {
            return Err(AmmError::InsufficientLiquidity);
        }
        // amount_out = reserve_out * effective_in / (reserve_in + effective_in)
        let effective_in = amount_in.saturating_sub(amount_in.bps(self.config.fee_bps));
        let numerator = reserve_out
            .checked_mul(effective_in)
            .map_err(|_| AmmError::InsufficientLiquidity)?;
        let denominator = reserve_in.saturating_add(effective_in);
        numerator
            .checked_div(denominator)
            .map_err(|_| AmmError::InsufficientLiquidity)
    }

    /// Relative price impact of swapping `amount_in` (0.0 = none, 1.0 = 100 %).
    pub fn price_impact(
        &self,
        ledger: &Ledger,
        token_in: Token,
        amount_in: Wad,
    ) -> Result<f64, AmmError> {
        let spot = self
            .spot_price(ledger, token_in)
            .ok_or(AmmError::InsufficientLiquidity)?;
        let out = self.quote_out(ledger, token_in, amount_in)?;
        let executed = out.to_f64() / amount_in.to_f64().max(1e-18);
        let spot = spot.to_f64();
        if spot <= 0.0 {
            return Ok(1.0);
        }
        Ok(((spot - executed) / spot).clamp(0.0, 1.0))
    }

    /// Execute a swap: pulls `amount_in` from `trader` into the pool account
    /// and pushes the output back. The reserve mutation *is* the pair of
    /// ledger transfers, so it is journaled with any open checkpoint and
    /// reverts with the transaction. Returns the output amount.
    pub fn swap(
        &self,
        ledger: &mut Ledger,
        trader: Address,
        token_in: Token,
        amount_in: Wad,
    ) -> Result<Wad, AmmError> {
        let token_out = self.counterpart(token_in)?;
        let amount_out = self.quote_out(ledger, token_in, amount_in)?;
        if amount_out >= self.reserve_of(ledger, token_out)? {
            return Err(AmmError::InsufficientLiquidity);
        }
        ledger
            .transfer(trader, self.address, token_in, amount_in)
            .map_err(|e| AmmError::Ledger(e.to_string()))?;
        ledger
            .transfer(self.address, trader, token_out, amount_out)
            .map_err(|e| AmmError::Ledger(e.to_string()))?;
        Ok(amount_out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool_with_liquidity(ledger: &mut Ledger, eth: u64, dai: u64) -> ConstantProductPool {
        let mut pool = ConstantProductPool::new(
            Address::from_label("uniswap-eth-dai"),
            PoolConfig::standard(Token::ETH, Token::DAI),
        );
        pool.seed_liquidity(ledger, Wad::from_int(eth), Wad::from_int(dai));
        pool
    }

    #[test]
    fn spot_price_matches_reserve_ratio() {
        let mut ledger = Ledger::new();
        let pool = pool_with_liquidity(&mut ledger, 1_000, 3_000_000);
        // 3,000,000 DAI / 1,000 ETH = 3,000 DAI per ETH.
        assert_eq!(
            pool.spot_price(&ledger, Token::ETH).unwrap(),
            Wad::from_int(3_000)
        );
    }

    #[test]
    fn quote_less_than_spot_due_to_impact_and_fee() {
        let mut ledger = Ledger::new();
        let pool = pool_with_liquidity(&mut ledger, 1_000, 3_000_000);
        let out = pool
            .quote_out(&ledger, Token::ETH, Wad::from_int(10))
            .unwrap();
        // Spot value would be 30,000 DAI; the quote must be lower.
        assert!(out < Wad::from_int(30_000));
        assert!(
            out > Wad::from_int(29_000),
            "impact should be ~1% for a 1% trade, got {out}"
        );
    }

    #[test]
    fn swap_conserves_product_approximately() {
        let mut ledger = Ledger::new();
        let pool = pool_with_liquidity(&mut ledger, 1_000, 3_000_000);
        let trader = Address::from_seed(9);
        ledger.mint(trader, Token::ETH, Wad::from_int(50));
        let (ra0, rb0) = pool.reserves(&ledger);
        let k0 = ra0.to_f64() * rb0.to_f64();
        let out = pool
            .swap(&mut ledger, trader, Token::ETH, Wad::from_int(50))
            .unwrap();
        assert!(!out.is_zero());
        let (ra1, rb1) = pool.reserves(&ledger);
        let k1 = ra1.to_f64() * rb1.to_f64();
        // Fees make k grow slightly; it must never shrink.
        assert!(k1 >= k0 * 0.9999, "k shrank: {k0} -> {k1}");
        assert_eq!(ledger.balance(trader, Token::DAI), out);
        assert_eq!(ledger.balance(trader, Token::ETH), Wad::ZERO);
    }

    #[test]
    fn swap_without_balance_fails_cleanly() {
        let mut ledger = Ledger::new();
        let pool = pool_with_liquidity(&mut ledger, 100, 300_000);
        let trader = Address::from_seed(1);
        let err = pool
            .swap(&mut ledger, trader, Token::ETH, Wad::from_int(5))
            .unwrap_err();
        assert!(matches!(err, AmmError::Ledger(_)));
        // Reserves untouched.
        assert_eq!(
            pool.reserves(&ledger),
            (Wad::from_int(100), Wad::from_int(300_000))
        );
    }

    #[test]
    fn unsupported_token_rejected() {
        let mut ledger = Ledger::new();
        let pool = pool_with_liquidity(&mut ledger, 100, 300_000);
        assert!(matches!(
            pool.quote_out(&ledger, Token::WBTC, Wad::from_int(1)),
            Err(AmmError::UnsupportedToken(Token::WBTC))
        ));
    }

    #[test]
    fn zero_amount_rejected() {
        let mut ledger = Ledger::new();
        let pool = pool_with_liquidity(&mut ledger, 100, 300_000);
        assert!(matches!(
            pool.quote_out(&ledger, Token::ETH, Wad::ZERO),
            Err(AmmError::ZeroAmount)
        ));
    }

    #[test]
    fn price_impact_grows_with_trade_size() {
        let mut ledger = Ledger::new();
        let pool = pool_with_liquidity(&mut ledger, 1_000, 3_000_000);
        let small = pool
            .price_impact(&ledger, Token::ETH, Wad::from_int(1))
            .unwrap();
        let large = pool
            .price_impact(&ledger, Token::ETH, Wad::from_int(200))
            .unwrap();
        assert!(large > small);
        assert!(
            large > 0.15,
            "a 20% of-reserve trade should have >15% impact, got {large}"
        );
    }
}
