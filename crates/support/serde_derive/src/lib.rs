//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` implementations.
//!
//! Nothing in this workspace serializes at runtime — the derives exist so the
//! domain types can keep their upstream-compatible annotations (including
//! `#[serde(...)]` attributes, registered here as inert helpers) without a
//! crates.io dependency. Swapping the real serde back in is a manifest edit.

use proc_macro::TokenStream;

/// Accepts the annotated item (and its `#[serde(...)]` attributes) and emits
/// no code.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts the annotated item (and its `#[serde(...)]` attributes) and emits
/// no code.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
