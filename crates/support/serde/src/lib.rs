//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its domain types for
//! API compatibility, but never serializes anything at runtime, and the build
//! environment cannot reach crates.io. This stub provides the two marker
//! traits and re-exports the no-op derives from [`serde_derive`], so
//! `use serde::{Deserialize, Serialize};` resolves in both the type and macro
//! namespaces exactly as with the real crate.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize` (no methods; the no-op
/// derive does not implement it).
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize` (no methods; the no-op
/// derive does not implement it).
pub trait Deserialize<'de> {}
