//! Offline stand-in for the `rand_distr` crate (0.4 API subset).
//!
//! Implements the three distributions the workspace samples — [`Normal`]
//! (Box–Muller), [`LogNormal`] (exp of a normal) and [`Poisson`] (Knuth's
//! multiplication method, adequate for the small intensities the price
//! processes use) — over the vendored [`rand`] stub.

use rand::Rng;

/// Sampling interface, mirroring `rand_distr::Distribution`.
pub trait Distribution<T> {
    /// Draw one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// Parameter error, mirroring `rand_distr::NormalError` et al.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid distribution parameter")
    }
}

impl std::error::Error for Error {}

fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Box–Muller; u is nudged away from 0 so ln(u) is finite.
    let u = (rng.gen_f64()).max(f64::MIN_POSITIVE);
    let v = rng.gen_f64();
    (-2.0 * u.ln()).sqrt() * (std::f64::consts::TAU * v).cos()
}

/// Normal distribution `N(mean, std_dev²)`.
#[derive(Debug, Clone, Copy)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// A normal distribution; `std_dev` must be finite and non-negative.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, Error> {
        if !mean.is_finite() || !std_dev.is_finite() || std_dev < 0.0 {
            return Err(Error);
        }
        Ok(Normal { mean, std_dev })
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * standard_normal(rng)
    }
}

/// Log-normal distribution: `exp(N(mu, sigma²))`.
#[derive(Debug, Clone, Copy)]
pub struct LogNormal {
    norm: Normal,
}

impl LogNormal {
    /// A log-normal with the given location/scale of the underlying normal.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, Error> {
        Ok(LogNormal {
            norm: Normal::new(mu, sigma)?,
        })
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.norm.sample(rng).exp()
    }
}

/// Poisson distribution with rate `lambda`.
#[derive(Debug, Clone, Copy)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// A Poisson distribution; `lambda` must be finite and positive.
    pub fn new(lambda: f64) -> Result<Self, Error> {
        if !lambda.is_finite() || lambda <= 0.0 {
            return Err(Error);
        }
        Ok(Poisson { lambda })
    }
}

impl Distribution<f64> for Poisson {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.lambda > 30.0 {
            // Normal approximation for large rates (unused by the sim's tiny
            // jump intensities, but keeps the stub total-time bounded).
            return (self.lambda + self.lambda.sqrt() * standard_normal(rng))
                .round()
                .max(0.0);
        }
        let limit = (-self.lambda).exp();
        let mut product = rng.gen_f64();
        let mut count = 0u64;
        while product > limit {
            count += 1;
            product *= rng.gen_f64();
        }
        count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = StdRng::seed_from_u64(1);
        let normal = Normal::new(5.0, 2.0).unwrap();
        let samples: Vec<f64> = (0..20_000).map(|_| normal.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / samples.len() as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "variance {var}");
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Poisson::new(0.0).is_err());
        assert!(Normal::new(0.0, 0.0).is_ok()); // degenerate but accepted
    }

    #[test]
    fn poisson_mean_tracks_lambda() {
        let mut rng = StdRng::seed_from_u64(2);
        let poisson = Poisson::new(3.0).unwrap();
        let total: f64 = (0..20_000).map(|_| poisson.sample(&mut rng)).sum();
        let mean = total / 20_000.0;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn lognormal_is_positive() {
        let mut rng = StdRng::seed_from_u64(3);
        let dist = LogNormal::new(10.0, 1.5).unwrap();
        for _ in 0..1_000 {
            assert!(dist.sample(&mut rng) > 0.0);
        }
    }
}
