//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this implements the
//! small API surface the workspace's benches use — `criterion_group!`,
//! `criterion_main!`, [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`Bencher::iter`] and
//! [`Bencher::iter_batched`] — as a micro-harness: each benchmark is warmed
//! up once, timed over a handful of iterations, and the mean wall-clock time
//! is printed. No statistics, plots or baselines.

use std::time::{Duration, Instant};

/// How measured closures receive their per-iteration inputs.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small setup output; batches may share a setup call in real criterion.
    SmallInput,
    /// Large setup output.
    LargeInput,
    /// Fresh setup every iteration.
    PerIteration,
}

/// Prevent the optimizer from discarding a value (best-effort).
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Times one benchmark body.
pub struct Bencher {
    iterations: u32,
    total: Duration,
}

impl Bencher {
    fn new(iterations: u32) -> Self {
        Bencher {
            iterations,
            total: Duration::ZERO,
        }
    }

    /// Time `routine` over the configured iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine()); // warm-up, untimed
        let started = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.total += started.elapsed();
    }

    /// Time `routine` over fresh `setup` outputs, excluding setup time.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        black_box(routine(setup())); // warm-up, untimed
        for _ in 0..self.iterations {
            let input = setup();
            let started = Instant::now();
            black_box(routine(input));
            self.total += started.elapsed();
        }
    }

    fn mean(&self) -> Duration {
        self.total / self.iterations.max(1)
    }
}

fn run_one(label: &str, iterations: u32, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher::new(iterations);
    f(&mut bencher);
    println!(
        "bench {label:<50} {:>12.3?} /iter ({iterations} iters)",
        bencher.mean()
    );
}

/// Command-line options shared by every group, mirroring the subset of the
/// real criterion CLI the workspace relies on: a substring filter selecting
/// which benchmarks run, and `--test` (run each selected benchmark exactly
/// once, as a smoke check, instead of timing it) for quick CI runs.
#[derive(Debug, Clone, Default)]
struct CliOptions {
    filter: Option<String>,
    test_mode: bool,
}

impl CliOptions {
    fn from_env() -> Self {
        let mut options = CliOptions::default();
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => options.test_mode = true,
                // Harness flags cargo may forward; ignore like criterion does.
                "--bench" | "--nocapture" | "--quiet" => {}
                other if other.starts_with("--") => {}
                other => options.filter = Some(other.to_string()),
            }
        }
        options
    }

    fn selects(&self, label: &str) -> bool {
        self.filter
            .as_deref()
            .map(|needle| label.contains(needle))
            .unwrap_or(true)
    }

    /// Timed iterations for one benchmark: `--test` forces a single smoke
    /// iteration regardless of the configured sample size.
    fn effective_iterations(&self, configured: u32) -> u32 {
        if self.test_mode {
            1
        } else {
            configured
        }
    }
}

/// Entry point handed to every benchmark function.
pub struct Criterion {
    iterations: u32,
    options: CliOptions,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            iterations: 5,
            options: CliOptions::from_env(),
        }
    }
}

impl Criterion {
    /// Register and immediately run one benchmark.
    pub fn bench_function<F>(&mut self, name: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if self.options.selects(name.as_ref()) {
            run_one(
                name.as_ref(),
                self.options.effective_iterations(self.iterations),
                &mut f,
            );
        }
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl AsRef<str>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.as_ref().to_string(),
            iterations: self.iterations,
            options: self.options.clone(),
        }
    }
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup {
    name: String,
    iterations: u32,
    options: CliOptions,
}

impl BenchmarkGroup {
    /// Override the number of timed iterations for this group.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.iterations = (samples as u32).clamp(1, 1_000);
        self
    }

    /// Register and immediately run one benchmark in the group.
    pub fn bench_function<F>(&mut self, name: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, name.as_ref());
        if self.options.selects(&label) {
            run_one(
                &label,
                self.options.effective_iterations(self.iterations),
                &mut f,
            );
        }
        self
    }

    /// Finish the group (no-op; groups run eagerly).
    pub fn finish(self) {}
}

/// Bundle benchmark functions under one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($function:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($function(&mut criterion);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
