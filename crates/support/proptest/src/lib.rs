//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset the workspace's property tests use: the
//! [`proptest!`] macro over `pattern in strategy` arguments, range and tuple
//! strategies, [`collection::vec`], `prop_assert!` / `prop_assert_eq!` /
//! `prop_assume!`, and [`test_runner::ProptestConfig::with_cases`]. Cases are
//! sampled from a deterministic per-test generator (seeded from the test
//! name), so failures are reproducible; there is no shrinking — the failing
//! inputs are reported as sampled.

/// Outcome of one generated test case.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the message describes it.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
}

/// Runner configuration and deterministic RNG.
pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of accepted cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` accepted cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic generator (SplitMix64) used to sample strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from an arbitrary label (the test name), FNV-1a hashed.
        pub fn deterministic(label: &str) -> Self {
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for byte in label.bytes() {
                hash ^= byte as u64;
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: hash }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// A source of random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Sample one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn sample(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (rng.next_u64() as u128) % span;
                    (self.start as i128 + offset as i128) as $ty
                }
            }
        )*};
    }

    int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    // u128 needs its own impl: the generic body routes through i128 and
    // would overflow on wide spans.
    impl Strategy for Range<u128> {
        type Value = u128;
        fn sample(&self, rng: &mut TestRng) -> u128 {
            assert!(self.start < self.end, "cannot sample empty range");
            let span = self.end - self.start;
            let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
            self.start + wide % span
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "cannot sample empty range");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy producing `Vec`s of another strategy's values.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A vector of `element` values with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "cannot sample empty length range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Declare property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $config:expr;) => {};
    (config = $config:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            let mut accepted = 0u32;
            let mut attempts = 0u32;
            // The attempt cap bounds pathological `prop_assume!` filters.
            while accepted < config.cases && attempts < config.cases.saturating_mul(20) {
                attempts += 1;
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)*
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => continue,
                    ::std::result::Result::Err($crate::TestCaseError::Fail(message)) => {
                        panic!("proptest case {attempts} failed: {message}")
                    }
                }
            }
            assert!(
                accepted > 0,
                "prop_assume! rejected every generated input"
            );
        }
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {:?} != {:?}",
                left, right
            )));
        }
    }};
}

/// Skip the current case unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(a in 10u64..20, b in -5i32..5, f in 0.0f64..1.0) {
            prop_assert!((10..20).contains(&a));
            prop_assert!((-5..5).contains(&b));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn tuples_and_vecs_compose(
            pairs in prop::collection::vec((1u64..100, 0.1f64..0.9), 1..10),
        ) {
            prop_assert!(!pairs.is_empty() && pairs.len() < 10);
            for (n, x) in &pairs {
                prop_assert!((1..100).contains(n), "n = {n} out of range");
                prop_assert!((0.1..0.9).contains(x));
            }
        }

        #[test]
        fn assume_filters_cases(n in 0u64..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }
}
