//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal, deterministic implementation of exactly the surface it uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`] methods
//! `gen_bool` / `gen_range` (integer and float ranges). The generator is
//! xoshiro256++ seeded through SplitMix64 — high-quality, fast, and stable
//! across runs, which is all the simulation's reproducibility contract needs.
//! It is **not** the same stream as the real `StdRng` (ChaCha12), so seeds
//! are not portable between this stub and upstream `rand`.

use std::ops::Range;

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.gen_f64() < p
    }

    /// Uniform sample from a half-open range. The element type is inferred
    /// from the call site, as with the real `rand::Rng::gen_range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_one(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// A half-open range that can be sampled uniformly for values of type `T`.
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample_one<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_one<R: Rng + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $ty
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_one<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + rng.gen_f64() * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_one<R: Rng + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (rng.gen_f64() as f32) * (self.end - self.start)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for `rand`'s `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(7);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1_000 {
            let u = rng.gen_range(3usize..17);
            assert!((3..17).contains(&u));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = rng.gen_range(0..10);
            assert!((0..10).contains(&i));
        }
    }
}
