//! Corruption and truncation recovery: every malformed journal surfaces a
//! typed [`JournalError`] with path and offset — the reader never panics on
//! untrusted file contents.

use std::path::PathBuf;

use defi_journal::{JournalError, JournalReader, JournalWriter, VERSION};
use defi_sim::{RunStart, SimConfig, SimObserver, TickStart};
use defi_types::TimeMap;

/// Write a small, well-formed journal through the live observer path and a
/// manually framed end/trailer, returning its bytes.
fn well_formed_journal(dir: &str) -> (PathBuf, Vec<u8>) {
    let dir = std::env::temp_dir().join(dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("run.jrn");

    let config = SimConfig::smoke_test(7);
    let mut writer = JournalWriter::create(&path).expect("create journal");
    writer.on_run_start(&RunStart {
        config: &config,
        time_map: TimeMap::paper_study_window(),
        market_spreads: Default::default(),
    });
    for tick in 0..5u64 {
        writer.on_tick_start(&TickStart {
            block: 7_500_000 + tick,
            tick_index: tick,
        });
    }
    drop(writer);

    // Append an End frame and the trailer with the writer's framing.
    use defi_journal::frames::{encode_frame, EndFrame, Frame};
    let mut bytes = std::fs::read(&path).expect("read journal");
    for frame in [
        Frame::End(Box::new(EndFrame {
            snapshot_block: 7_500_005,
            final_positions: Default::default(),
            headers: Vec::new(),
            oracle_history: Vec::new(),
        })),
        Frame::Eof { frame_count: 7 },
    ] {
        let (tag, payload) = encode_frame(&frame);
        let mut framed = Vec::with_capacity(payload.len() + 9);
        framed.push(tag);
        framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        framed.extend_from_slice(&payload);
        let crc = defi_journal::crc32(&framed);
        framed.extend_from_slice(&crc.to_le_bytes());
        bytes.extend_from_slice(&framed);
    }
    std::fs::write(&path, &bytes).expect("write journal");
    (path, bytes)
}

#[test]
fn well_formed_journal_opens() {
    let (path, _) = well_formed_journal("djrn-corrupt-base");
    let reader = JournalReader::open(&path).expect("open well-formed journal");
    assert_eq!(reader.frames().len(), 6, "5 ticks + end");
    std::fs::remove_file(&path).ok();
}

#[test]
fn missing_file_is_a_typed_io_error() {
    let path = std::env::temp_dir().join("djrn-does-not-exist/none.jrn");
    match JournalReader::open(&path) {
        Err(JournalError::Io {
            path: p, context, ..
        }) => {
            assert_eq!(p, path);
            assert_eq!(context, "read journal");
        }
        other => panic!("expected Io error, got {other:?}"),
    }
}

#[test]
fn bad_magic_is_rejected() {
    let (path, mut bytes) = well_formed_journal("djrn-corrupt-magic");
    bytes[0] = b'X';
    std::fs::write(&path, &bytes).expect("write");
    assert!(matches!(
        JournalReader::open(&path),
        Err(JournalError::BadMagic { .. })
    ));
    std::fs::remove_file(&path).ok();
}

#[test]
fn newer_version_is_rejected_with_both_versions() {
    let (path, mut bytes) = well_formed_journal("djrn-corrupt-version");
    bytes[4] = (VERSION + 1) as u8;
    bytes[5] = 0;
    std::fs::write(&path, &bytes).expect("write");
    match JournalReader::open(&path) {
        Err(JournalError::UnsupportedVersion {
            found, supported, ..
        }) => {
            assert_eq!(found, VERSION + 1);
            assert_eq!(supported, VERSION);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn every_single_byte_flip_is_caught_without_panicking() {
    let (path, bytes) = well_formed_journal("djrn-corrupt-flip");
    // Flip each byte in turn (past the 6-byte preamble, which has its own
    // tests above): the reader must return an error or — never — panic. A
    // flip inside a frame is caught by the CRC; a flip in a length field can
    // also surface as truncation.
    for i in 6..bytes.len() {
        let mut mutated = bytes.clone();
        mutated[i] ^= 0x40;
        std::fs::write(&path, &mutated).expect("write");
        match JournalReader::open(&path) {
            Err(
                JournalError::Corrupt { .. }
                | JournalError::Truncated { .. }
                | JournalError::BadMagic { .. }
                | JournalError::UnsupportedVersion { .. },
            ) => {}
            Ok(_) => panic!("byte {i}: flip went undetected"),
            Err(other) => panic!("byte {i}: unexpected error {other:?}"),
        }
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn every_truncation_point_is_caught_without_panicking() {
    let (path, bytes) = well_formed_journal("djrn-corrupt-trunc");
    for cut in 0..bytes.len() {
        std::fs::write(&path, &bytes[..cut]).expect("write");
        match JournalReader::open(&path) {
            Err(JournalError::Truncated { offset, .. }) => {
                assert!(
                    offset <= cut as u64,
                    "cut {cut}: reported offset {offset} beyond the file"
                );
            }
            // Cutting mid-preamble can also read as bad magic.
            Err(JournalError::BadMagic { .. }) if cut < 6 => {}
            other => panic!("cut {cut}: expected Truncated, got {other:?}"),
        }
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn data_after_the_trailer_is_corrupt() {
    let (path, mut bytes) = well_formed_journal("djrn-corrupt-tail");
    let tail = bytes[6..20].to_vec();
    bytes.extend_from_slice(&tail);
    std::fs::write(&path, &bytes).expect("write");
    match JournalReader::open(&path) {
        Err(JournalError::Corrupt { detail, .. }) => {
            assert!(detail.contains("after end-of-journal"), "got: {detail}");
        }
        other => panic!("expected Corrupt, got {other:?}"),
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn journal_without_finish_reads_as_truncated() {
    let dir = std::env::temp_dir().join("djrn-corrupt-unfinished");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("run.jrn");
    let config = SimConfig::smoke_test(7);
    let mut writer = JournalWriter::create(&path).expect("create journal");
    writer.on_run_start(&RunStart {
        config: &config,
        time_map: TimeMap::paper_study_window(),
        market_spreads: Default::default(),
    });
    drop(writer); // no finish(): no trailer
    assert!(matches!(
        JournalReader::open(&path),
        Err(JournalError::Truncated { .. })
    ));
    std::fs::remove_file(&path).ok();
}

#[test]
fn errors_render_path_and_cause() {
    let (path, mut bytes) = well_formed_journal("djrn-corrupt-display");
    bytes[10] ^= 0xFF;
    std::fs::write(&path, &bytes).expect("write");
    let error = JournalReader::open(&path).expect_err("corrupt journal");
    let rendered = error.to_string();
    assert!(
        rendered.contains(path.to_string_lossy().as_ref()),
        "error must name the file: {rendered}"
    );
    assert!(
        rendered.contains("byte") || rendered.contains("truncated"),
        "error must locate the damage: {rendered}"
    );
    std::fs::remove_file(&path).ok();
}
