//! Journal codec round-trip property test: random observation streams
//! encode → decode → re-encode byte-identically, and a reader-validated file
//! reproduces the exact frame sequence that was written.

use std::collections::BTreeMap;

use defi_chain::{AuctionPhase, BlockHeader, ChainEvent, LiquidationEvent, LoggedEvent};
use defi_core::position::{CollateralHolding, DebtHolding, Position};
use defi_journal::frames::{
    decode_frame, encode_frame, EndFrame, Frame, HeaderFrame, LiquidationMetaFrame, TickFrame,
};
use defi_journal::{JournalReader, JournalWriter};
use defi_oracle::PricePoint;
use defi_sim::{LiquidationObservation, RunStart, SimConfig, SimObserver, TickStart, VolumeSample};
use defi_types::{Address, Platform, TimeMap, Token, TxHash, Wad};

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

fn arb_token(rng: &mut StdRng) -> Token {
    Token::ALL[rng.gen_range(0..Token::ALL.len())]
}

fn arb_platform(rng: &mut StdRng) -> Platform {
    Platform::ALL[rng.gen_range(0..Platform::ALL.len())]
}

fn arb_wad(rng: &mut StdRng) -> Wad {
    // Mix tiny, mid-range and extreme magnitudes.
    match rng.gen_range(0..4u32) {
        0 => Wad::ZERO,
        1 => Wad::from_raw(rng.next_u64().into()),
        2 => Wad::from_raw(u128::from(rng.next_u64()) << 64 | u128::from(rng.next_u64())),
        _ => Wad::MAX,
    }
}

fn arb_address(rng: &mut StdRng) -> Address {
    Address::from_seed(rng.next_u64())
}

fn arb_phase(rng: &mut StdRng) -> AuctionPhase {
    if rng.gen_bool(0.5) {
        AuctionPhase::Tend
    } else {
        AuctionPhase::Dent
    }
}

fn arb_event(rng: &mut StdRng) -> ChainEvent {
    match rng.gen_range(0..9u32) {
        0 => ChainEvent::Liquidation(LiquidationEvent {
            platform: arb_platform(rng),
            liquidator: arb_address(rng),
            borrower: arb_address(rng),
            debt_token: arb_token(rng),
            debt_repaid: arb_wad(rng),
            debt_repaid_usd: arb_wad(rng),
            collateral_token: arb_token(rng),
            collateral_seized: arb_wad(rng),
            collateral_seized_usd: arb_wad(rng),
            used_flash_loan: rng.gen_bool(0.3),
        }),
        1 => ChainEvent::AuctionStarted {
            auction_id: rng.next_u64(),
            borrower: arb_address(rng),
            collateral_token: arb_token(rng),
            collateral_amount: arb_wad(rng),
            debt: arb_wad(rng),
        },
        2 => ChainEvent::AuctionBid {
            auction_id: rng.next_u64(),
            bidder: arb_address(rng),
            phase: arb_phase(rng),
            debt_bid: arb_wad(rng),
            collateral_bid: arb_wad(rng),
        },
        3 => ChainEvent::AuctionFinalized {
            auction_id: rng.next_u64(),
            winner: arb_address(rng),
            debt_repaid: arb_wad(rng),
            debt_repaid_usd: arb_wad(rng),
            collateral_token: arb_token(rng),
            collateral_received: arb_wad(rng),
            collateral_received_usd: arb_wad(rng),
            borrower: arb_address(rng),
            started_at: rng.next_u64(),
            last_bid_at: rng.next_u64(),
            tend_bids: rng.next_u64() as u32,
            dent_bids: rng.next_u64() as u32,
            final_phase: arb_phase(rng),
        },
        4 => ChainEvent::FlashLoan {
            pool: arb_platform(rng),
            borrower: arb_address(rng),
            token: arb_token(rng),
            amount: arb_wad(rng),
            amount_usd: arb_wad(rng),
            fee: arb_wad(rng),
        },
        5 => ChainEvent::OracleUpdate {
            token: arb_token(rng),
            price: arb_wad(rng),
        },
        6 => ChainEvent::Borrow {
            platform: arb_platform(rng),
            borrower: arb_address(rng),
            token: arb_token(rng),
            amount: arb_wad(rng),
        },
        7 => ChainEvent::Deposit {
            platform: arb_platform(rng),
            account: arb_address(rng),
            token: arb_token(rng),
            amount: arb_wad(rng),
        },
        _ => ChainEvent::Repay {
            platform: arb_platform(rng),
            borrower: arb_address(rng),
            token: arb_token(rng),
            amount: arb_wad(rng),
        },
    }
}

fn arb_logged(rng: &mut StdRng) -> LoggedEvent {
    LoggedEvent {
        block: rng.next_u64(),
        tx_index: rng.next_u64() as u32,
        tx_hash: TxHash::derive(rng.next_u64(), rng.next_u64(), rng.next_u64()),
        sender: arb_address(rng),
        gas_price: rng.next_u64(),
        gas_used: rng.next_u64(),
        event: arb_event(rng),
    }
}

fn arb_position(rng: &mut StdRng) -> Position {
    let mut position = Position::new(arb_address(rng));
    if rng.gen_bool(0.7) {
        position.platform = Some(arb_platform(rng));
    }
    for _ in 0..rng.gen_range(0..4usize) {
        position.collateral.push(CollateralHolding {
            token: arb_token(rng),
            amount: arb_wad(rng),
            value_usd: arb_wad(rng),
            liquidation_threshold: arb_wad(rng),
            liquidation_spread: arb_wad(rng),
        });
    }
    for _ in 0..rng.gen_range(0..3usize) {
        position.debt.push(DebtHolding {
            token: arb_token(rng),
            amount: arb_wad(rng),
            value_usd: arb_wad(rng),
        });
    }
    position
}

fn arb_header_frame(rng: &mut StdRng) -> HeaderFrame {
    let mut config = SimConfig::smoke_test(rng.next_u64());
    if rng.gen_bool(0.5) {
        config.scenario = Some(format!("scenario-{}", rng.next_u64() % 100));
    }
    let mut market_spreads = BTreeMap::new();
    for _ in 0..rng.gen_range(0..8usize) {
        market_spreads.insert((arb_platform(rng), arb_token(rng)), arb_wad(rng));
    }
    HeaderFrame {
        config,
        time_map: TimeMap {
            genesis_block: rng.next_u64(),
            genesis_timestamp: rng.next_u64(),
            seconds_per_block: rng.gen_range(1.0..30.0f64),
        },
        market_spreads,
    }
}

fn arb_end_frame(rng: &mut StdRng) -> EndFrame {
    let mut final_positions = BTreeMap::new();
    for _ in 0..rng.gen_range(0..3usize) {
        let platform = arb_platform(rng);
        let positions = (0..rng.gen_range(0..5usize))
            .map(|_| arb_position(rng))
            .collect();
        final_positions.insert(platform, positions);
    }
    let headers = (0..rng.gen_range(0..6usize))
        .map(|_| BlockHeader {
            number: rng.next_u64(),
            timestamp: rng.next_u64(),
            gas_used: rng.next_u64(),
            gas_limit: rng.next_u64(),
            median_gas_price: rng.next_u64(),
            tx_count: rng.next_u64() as u32,
            mempool_backlog: rng.next_u64() as u32,
        })
        .collect();
    let oracle_history = (0..rng.gen_range(0..4usize))
        .map(|_| {
            let token = arb_token(rng);
            let points = (0..rng.gen_range(0..5usize))
                .map(|_| PricePoint {
                    block: rng.next_u64(),
                    price: arb_wad(rng),
                })
                .collect();
            (token, points)
        })
        .collect();
    EndFrame {
        snapshot_block: rng.next_u64(),
        final_positions,
        headers,
        oracle_history,
    }
}

fn arb_frame(rng: &mut StdRng) -> Frame {
    match rng.gen_range(0..7u32) {
        0 => Frame::Header(Box::new(arb_header_frame(rng))),
        1 => Frame::Tick(TickFrame {
            block: rng.next_u64(),
            tick_index: rng.next_u64(),
        }),
        2 => Frame::Event(arb_logged(rng)),
        3 => Frame::LiquidationMeta(LiquidationMetaFrame {
            eth_price: arb_wad(rng),
            health_factor_before: if rng.gen_bool(0.5) {
                Some(arb_wad(rng))
            } else {
                None
            },
        }),
        4 => Frame::Volume(VolumeSample {
            block: rng.next_u64(),
            platform: arb_platform(rng),
            total_collateral_usd: arb_wad(rng),
            dai_eth_collateral_usd: arb_wad(rng),
            open_positions: rng.next_u64() as u32,
        }),
        5 => Frame::End(Box::new(arb_end_frame(rng))),
        _ => Frame::Eof {
            frame_count: rng.next_u64(),
        },
    }
}

/// Random frames of every kind survive encode → decode → re-encode with the
/// exact same bytes (the codec has no lossy field and no nondeterminism).
#[test]
fn random_frames_round_trip_byte_identically() {
    let mut rng = StdRng::seed_from_u64(0xD7_4A11);
    for case in 0..500 {
        let frame = arb_frame(&mut rng);
        let (tag, payload) = encode_frame(&frame);
        let decoded = decode_frame(tag, &payload)
            .unwrap_or_else(|err| panic!("case {case}: decode failed: {err} ({frame:?})"));
        let (tag2, payload2) = encode_frame(&decoded);
        assert_eq!(tag, tag2, "case {case}: tag changed across round-trip");
        assert_eq!(
            payload, payload2,
            "case {case}: payload changed across round-trip ({frame:?})"
        );
    }
}

/// A random observation stream pushed through a real `JournalWriter` file
/// reads back (via the validating `JournalReader`) as the same sequence,
/// re-encoding byte-for-byte.
#[test]
fn random_observation_streams_survive_the_file_round_trip() {
    let mut rng = StdRng::seed_from_u64(0xA5_2026);
    for case in 0..20 {
        let dir = std::env::temp_dir().join(format!("djrn-roundtrip-{case}"));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("stream.jrn");

        let header = arb_header_frame(&mut rng);
        let mut writer = JournalWriter::create(&path).expect("create journal");
        writer.on_run_start(&RunStart {
            config: &header.config,
            time_map: header.time_map,
            market_spreads: header.market_spreads.clone(),
        });
        let mut written: Vec<Frame> = Vec::new();
        for _ in 0..rng.gen_range(0..120usize) {
            match rng.gen_range(0..4u32) {
                0 => {
                    let tick = TickFrame {
                        block: rng.next_u64(),
                        tick_index: rng.next_u64(),
                    };
                    writer.on_tick_start(&TickStart {
                        block: tick.block,
                        tick_index: tick.tick_index,
                    });
                    written.push(Frame::Tick(tick));
                }
                1 => {
                    let logged = arb_logged(&mut rng);
                    writer.on_event(&logged);
                    written.push(Frame::Event(logged));
                }
                2 => {
                    // A liquidation observation always rides behind its
                    // settlement event, as the engine fires them.
                    let logged = arb_logged(&mut rng);
                    let meta = LiquidationMetaFrame {
                        eth_price: arb_wad(&mut rng),
                        health_factor_before: if rng.gen_bool(0.5) {
                            Some(arb_wad(&mut rng))
                        } else {
                            None
                        },
                    };
                    writer.on_event(&logged);
                    writer.on_liquidation(&LiquidationObservation {
                        logged: &logged,
                        eth_price: meta.eth_price,
                        health_factor_before: meta.health_factor_before,
                    });
                    written.push(Frame::Event(logged));
                    written.push(Frame::LiquidationMeta(meta));
                }
                _ => {
                    let sample = VolumeSample {
                        block: rng.next_u64(),
                        platform: arb_platform(&mut rng),
                        total_collateral_usd: arb_wad(&mut rng),
                        dai_eth_collateral_usd: arb_wad(&mut rng),
                        open_positions: rng.next_u64() as u32,
                    };
                    writer.on_volume_sample(&sample);
                    written.push(Frame::Volume(sample));
                }
            }
        }
        let end = arb_end_frame(&mut rng);
        // The writer derives the end frame from a live RunEnd; exercise the
        // frame layer directly here and cover the observer path in the
        // replay differential test.
        written.push(Frame::End(Box::new(end)));

        // Compare the written body against what the reader hands back.
        let reader_frames: Vec<Frame> = {
            // Finish with the end frame appended through the same framing the
            // writer uses: emit is private, so round-trip the End frame via
            // a second journal is not needed — drive on_run_end is impossible
            // without a live chain, so append by re-framing manually.
            drop(writer);
            let mut bytes = std::fs::read(&path).expect("read partial journal");
            let last = written.last().cloned().expect("stream has an end frame");
            let (tag, payload) = encode_frame(&last);
            let mut framed = Vec::with_capacity(payload.len() + 9);
            framed.push(tag);
            framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            framed.extend_from_slice(&payload);
            let crc = defi_journal::crc32(&framed);
            framed.extend_from_slice(&crc.to_le_bytes());
            bytes.extend_from_slice(&framed);
            // Trailer: header + body frames.
            let (eof_tag, eof_payload) = encode_frame(&Frame::Eof {
                frame_count: written.len() as u64 + 1,
            });
            let mut eof_framed = Vec::with_capacity(eof_payload.len() + 9);
            eof_framed.push(eof_tag);
            eof_framed.extend_from_slice(&(eof_payload.len() as u32).to_le_bytes());
            eof_framed.extend_from_slice(&eof_payload);
            let eof_crc = defi_journal::crc32(&eof_framed);
            eof_framed.extend_from_slice(&eof_crc.to_le_bytes());
            bytes.extend_from_slice(&eof_framed);
            std::fs::write(&path, bytes).expect("write completed journal");

            let reader = JournalReader::open(&path).expect("reopen journal");
            // Header round-trips too.
            let (tag_a, bytes_a) = encode_frame(&Frame::Header(Box::new(header.clone())));
            let (tag_b, bytes_b) = encode_frame(&Frame::Header(Box::new(reader.header().clone())));
            assert_eq!(
                (tag_a, bytes_a),
                (tag_b, bytes_b),
                "case {case}: header drifted"
            );
            reader.frames().to_vec()
        };

        assert_eq!(
            reader_frames.len(),
            written.len(),
            "case {case}: frame count drifted"
        );
        for (i, (a, b)) in written.iter().zip(reader_frames.iter()).enumerate() {
            let (tag_a, bytes_a) = encode_frame(a);
            let (tag_b, bytes_b) = encode_frame(b);
            assert_eq!(
                (tag_a, &bytes_a),
                (tag_b, &bytes_b),
                "case {case}: frame {i} drifted"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
