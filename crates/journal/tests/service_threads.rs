//! Threaded reader/writer smoke test for the [`RiskService`]: while the
//! write side ticks a real simulation session, reader threads continuously
//! assert that every published snapshot is internally consistent —
//! totals equal the fold of the entries, epochs only move forward, and the
//! envelope-powered what-if query agrees with a from-scratch re-valuation.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use defi_journal::RiskService;
use defi_lending::BookTotals;
use defi_sim::{NullObserver, SimConfig};
use defi_types::{Token, Wad};

/// Re-fold one book's totals from its entries (the from-scratch shadow of
/// the running sums the snapshot freezes).
fn refold(book: &defi_lending::BookSnapshot) -> BookTotals {
    let mut totals = BookTotals::default();
    for (_, entry) in book.entries() {
        totals.collateral_usd = totals
            .collateral_usd
            .saturating_add(entry.position.total_collateral_value());
        totals.debt_usd = totals
            .debt_usd
            .saturating_add(entry.position.total_debt_value());
        if entry.position.has_debt_in(Token::DAI) {
            let dai_eth = entry
                .position
                .collateral_value_in(Token::ETH)
                .saturating_add(entry.position.collateral_value_in(Token::WETH));
            totals.dai_eth_collateral_usd = totals.dai_eth_collateral_usd.saturating_add(dai_eth);
        }
        totals.open_positions += 1;
    }
    totals
}

#[test]
fn concurrent_readers_always_see_consistent_snapshots() {
    let mut service = RiskService::new(SimConfig::smoke_test(42));
    let handle = service.handle();
    let stop = Arc::new(AtomicBool::new(false));

    let readers: Vec<_> = (0..4)
        .map(|reader_id| {
            let handle = handle.clone();
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut last_epoch = 0u64;
                let mut checked = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let snapshot = handle.load();
                    assert!(
                        snapshot.epoch() >= last_epoch,
                        "reader {reader_id}: epoch went backwards"
                    );
                    last_epoch = snapshot.epoch();

                    for (platform, book) in snapshot.books() {
                        // Internal consistency: the frozen running totals
                        // must equal the fold of the frozen entries.
                        let expected = refold(book);
                        assert_eq!(
                            book.totals(),
                            expected,
                            "reader {reader_id}: {platform:?} snapshot totals diverge \
                             from its entries at epoch {}",
                            snapshot.epoch()
                        );

                        // What-if queries must match a from-scratch
                        // re-valuation at the quoted price.
                        for (token, shock_bps) in [
                            (Token::ETH, -800),
                            (Token::ETH, -4300),
                            (Token::WBTC, -2500),
                        ] {
                            let fast = book.breach_under(token, shock_bps);
                            let reference = book.breach_under_reference(token, shock_bps);
                            assert_eq!(
                                fast.breached,
                                reference,
                                "reader {reader_id}: {platform:?} breach_under({token:?}, \
                                 {shock_bps}bps) disagrees with the reference re-valuation \
                                 at epoch {}",
                                snapshot.epoch()
                            );
                        }
                    }
                    checked += 1;
                }
                checked
            })
        })
        .collect();

    // Write side: tick a couple hundred times on this thread while the
    // readers hammer the published snapshots.
    let mut observer = NullObserver;
    let mut epochs = Vec::new();
    for _ in 0..200 {
        if service.is_complete() {
            break;
        }
        service.tick(&mut observer).expect("tick");
        epochs.push(service.epoch());
    }
    assert!(
        epochs.windows(2).all(|w| w[0] < w[1]),
        "published epochs must be strictly increasing"
    );

    stop.store(true, Ordering::Relaxed);
    let mut total_checked = 0;
    for reader in readers {
        total_checked += reader.join().expect("reader thread");
    }
    assert!(total_checked > 0, "readers never observed a snapshot");

    // The final snapshot carries real content: the smoke scenario opens
    // positions within the first few ticks.
    let last = handle.load();
    assert!(last.epoch() > 0);
    assert!(
        last.open_positions() > 0,
        "200 smoke ticks must open positions"
    );

    // Point lookups agree with the entry listing.
    let mut looked_up = 0;
    for (platform, book) in last.books() {
        for (address, entry) in book.entries() {
            let (found_platform, position) =
                last.position(*address).expect("listed account resolves");
            if found_platform == *platform {
                assert_eq!(position.owner, entry.position.owner);
                looked_up += 1;
            }
        }
    }
    assert!(looked_up > 0, "no point lookup exercised");

    // Shock sanity: a −100% shock floors the price at zero and a 0bps shock
    // reproduces the liquidatable listing.
    for (_, book) in last.books() {
        assert_eq!(book.shocked_price(Token::ETH, -10_000), Wad::ZERO);
        let noop = book.breach_under(Token::ETH, 0);
        assert_eq!(noop.breached, book.liquidatable(), "0bps shock != current");
    }
}

#[test]
fn unchanged_shards_are_pointer_equal_across_consecutive_snapshots() {
    let mut service = RiskService::new(SimConfig::smoke_test(42));
    let handle = service.handle();
    let mut observer = NullObserver;

    // Tick the sim and, between consecutive published snapshots, count the
    // book shards the publisher reused (same `Arc`) versus re-froze. The
    // sharded snapshot cache must reuse every shard no tick work touched —
    // early ticks in particular leave most of the 16 address-range shards
    // empty, so reuse must show up immediately and repeatedly.
    let mut previous = handle.load();
    let mut reused = 0usize;
    let mut rebuilt = 0usize;
    for _ in 0..60 {
        if service.is_complete() {
            break;
        }
        service.tick(&mut observer).expect("tick");
        let current = handle.load();
        for ((platform, before), (after_platform, after)) in previous.books().zip(current.books()) {
            assert_eq!(platform, after_platform, "platform order is fixed");
            assert_eq!(before.shards().len(), after.shards().len());
            for (old, new) in before.shards().iter().zip(after.shards().iter()) {
                if Arc::ptr_eq(old, new) {
                    reused += 1;
                } else {
                    rebuilt += 1;
                }
            }
        }
        previous = current;
    }
    assert!(
        reused > 0,
        "no shard Arc was ever reused across consecutive snapshots"
    );
    assert!(
        rebuilt > 0,
        "no shard was ever re-frozen — the sim never touched the books?"
    );
}

#[test]
fn service_runs_to_completion_and_finishes() {
    let mut config = SimConfig::smoke_test(7);
    // Shorten: completeness is about lifecycle, not scale.
    config.end_block = config.start_block + 40 * config.tick_blocks;
    let mut service = RiskService::new(config);
    let handle = service.handle();
    let mut observer = NullObserver;
    while !service.is_complete() {
        service.tick(&mut observer).expect("tick");
    }
    assert!((service.progress() - 1.0).abs() < 1e-9);
    let report = service.finish(&mut observer).expect("finish");
    assert!(!report.chain.events().is_empty());
    // Readers keep the last published snapshot after the service is gone.
    assert!(handle.load().epoch() > 0);
}
