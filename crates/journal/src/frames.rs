//! The journal wire schema: frame tags, per-type codecs, and the typed
//! [`Frame`] the reader hands back.
//!
//! # Format (version 1)
//!
//! ```text
//! file   := magic "DJRN" · version u16 LE · frame*
//! frame  := tag u8 · len u32 LE · payload[len] · crc32 u32 LE
//! ```
//!
//! The CRC covers `tag · len · payload`. Body frames appear in capture order:
//! one `Header` first, then any interleaving of `Tick` / `Event` /
//! `LiquidationMeta` / `Volume`, one `End`, and an `Eof` trailer whose frame
//! count authenticates that the file is complete. A `LiquidationMeta` frame
//! always immediately follows the settlement `Event` frame it annotates.
//!
//! Enumerations ([`Token`], [`Platform`], [`AuctionPhase`]) are encoded as
//! their index in the declaration-order `ALL` arrays; `f64` config fields as
//! exact IEEE bit patterns; [`Wad`] as its raw `u128`. Wide integers
//! (`u64`/`u128`, including counts and `Wad`s) are LEB128 varints — journal
//! values are overwhelmingly small, so this roughly halves the file and its
//! write cost. Decoding is strict: unknown indexes, overlong varints and
//! leftover payload bytes are codec errors, so frame corruption can't
//! silently re-interpret.

use std::collections::BTreeMap;

use defi_chain::{AuctionPhase, BlockHeader, ChainEvent, LiquidationEvent, LoggedEvent};
use defi_core::position::{CollateralHolding, DebtHolding, Position};
use defi_oracle::PricePoint;
use defi_sim::{PlatformPopulation, SimConfig, VolumeSample};
use defi_types::{Address, BlockNumber, Platform, TimeMap, Token, TxHash, Wad};

use crate::codec::{CodecError, Decoder, Encoder};

/// File magic: the first four bytes of every journal.
pub const MAGIC: [u8; 4] = *b"DJRN";

/// Format version this build writes and the highest it reads.
pub const VERSION: u16 = 1;

/// Frame tags (wire values — append-only, never renumber).
pub const TAG_HEADER: u8 = 1;
/// Tick frame tag.
pub const TAG_TICK: u8 = 2;
/// Chain-event frame tag.
pub const TAG_EVENT: u8 = 3;
/// Liquidation-metadata frame tag.
pub const TAG_LIQUIDATION_META: u8 = 4;
/// Volume-sample frame tag.
pub const TAG_VOLUME: u8 = 5;
/// End-state frame tag.
pub const TAG_END: u8 = 6;
/// End-of-journal trailer tag.
pub const TAG_EOF: u8 = 7;

/// The run context captured at `on_run_start` — everything an observer
/// receives in [`defi_sim::RunStart`], by value.
#[derive(Debug, Clone)]
pub struct HeaderFrame {
    /// The full simulation configuration (seed, scenario, populations …).
    pub config: SimConfig,
    /// Block-to-wall-clock mapping of the study window.
    pub time_map: TimeMap,
    /// Liquidation spread per (platform, collateral) market.
    pub market_spreads: BTreeMap<(Platform, Token), Wad>,
}

/// One `on_tick_start` observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TickFrame {
    /// First block of the tick.
    pub block: BlockNumber,
    /// 0-based tick counter.
    pub tick_index: u64,
}

/// The liquidation-side metadata of an `on_liquidation` observation (the
/// settlement event itself is the preceding `Event` frame).
#[derive(Debug, Clone, Copy)]
pub struct LiquidationMetaFrame {
    /// ETH/USD price at the settlement block.
    pub eth_price: Wad,
    /// Borrower health factor just before settlement, when observable.
    pub health_factor_before: Option<Wad>,
}

/// The run's end state: everything `on_run_end` needs beyond the header and
/// the event stream.
#[derive(Debug, Clone)]
pub struct EndFrame {
    /// Block of the final position snapshot.
    pub snapshot_block: BlockNumber,
    /// Final positions per platform.
    pub final_positions: BTreeMap<Platform, Vec<Position>>,
    /// Every sealed block header (gas series, congestion).
    pub headers: Vec<BlockHeader>,
    /// Full market-oracle write history per token, in write order.
    pub oracle_history: Vec<(Token, Vec<PricePoint>)>,
}

/// One decoded journal frame.
#[derive(Debug, Clone)]
pub enum Frame {
    /// Run context (always the first frame).
    Header(Box<HeaderFrame>),
    /// A tick boundary.
    Tick(TickFrame),
    /// A logged chain event.
    Event(LoggedEvent),
    /// Metadata for the immediately preceding settlement event.
    LiquidationMeta(LiquidationMetaFrame),
    /// A collateral-volume sample.
    Volume(VolumeSample),
    /// End state (always the last body frame).
    End(Box<EndFrame>),
    /// Trailer: number of body frames before it.
    Eof {
        /// Body frames written before the trailer.
        frame_count: u64,
    },
}

// --- primitive helpers -----------------------------------------------------

fn put_token(enc: &mut Encoder, token: Token) {
    // Token::ALL enumerates every variant in declaration order, so the
    // position is total; the fallback index is unreachable.
    let idx = Token::ALL.iter().position(|t| *t == token).unwrap_or(0xFF);
    enc.put_u8(idx as u8);
}

fn get_token(dec: &mut Decoder<'_>) -> Result<Token, CodecError> {
    let idx = usize::from(dec.u8()?);
    Token::ALL
        .get(idx)
        .copied()
        .ok_or(CodecError::Invalid("token index"))
}

fn put_platform(enc: &mut Encoder, platform: Platform) {
    let idx = Platform::ALL
        .iter()
        .position(|p| *p == platform)
        .unwrap_or(0xFF);
    enc.put_u8(idx as u8);
}

fn get_platform(dec: &mut Decoder<'_>) -> Result<Platform, CodecError> {
    let idx = usize::from(dec.u8()?);
    Platform::ALL
        .get(idx)
        .copied()
        .ok_or(CodecError::Invalid("platform index"))
}

fn put_wad(enc: &mut Encoder, wad: Wad) {
    enc.put_u128(wad.raw());
}

fn get_wad(dec: &mut Decoder<'_>) -> Result<Wad, CodecError> {
    Ok(Wad::from_raw(dec.u128()?))
}

fn put_opt_wad(enc: &mut Encoder, wad: Option<Wad>) {
    match wad {
        Some(w) => {
            enc.put_bool(true);
            put_wad(enc, w);
        }
        None => enc.put_bool(false),
    }
}

fn get_opt_wad(dec: &mut Decoder<'_>) -> Result<Option<Wad>, CodecError> {
    if dec.bool()? {
        Ok(Some(get_wad(dec)?))
    } else {
        Ok(None)
    }
}

fn put_address(enc: &mut Encoder, address: Address) {
    enc.put_bytes(&address.0);
}

fn get_address(dec: &mut Decoder<'_>) -> Result<Address, CodecError> {
    let bytes = dec.take(20)?;
    let arr: [u8; 20] = bytes.try_into().map_err(|_| CodecError::UnexpectedEnd)?;
    Ok(Address(arr))
}

fn put_tx_hash(enc: &mut Encoder, hash: TxHash) {
    enc.put_bytes(&hash.0);
}

fn get_tx_hash(dec: &mut Decoder<'_>) -> Result<TxHash, CodecError> {
    let bytes = dec.take(32)?;
    let arr: [u8; 32] = bytes.try_into().map_err(|_| CodecError::UnexpectedEnd)?;
    Ok(TxHash(arr))
}

fn put_phase(enc: &mut Encoder, phase: AuctionPhase) {
    enc.put_u8(match phase {
        AuctionPhase::Tend => 0,
        AuctionPhase::Dent => 1,
    });
}

fn get_phase(dec: &mut Decoder<'_>) -> Result<AuctionPhase, CodecError> {
    match dec.u8()? {
        0 => Ok(AuctionPhase::Tend),
        1 => Ok(AuctionPhase::Dent),
        _ => Err(CodecError::Invalid("auction phase")),
    }
}

// --- chain events ----------------------------------------------------------

fn put_event(enc: &mut Encoder, event: &ChainEvent) {
    match event {
        ChainEvent::Liquidation(liq) => {
            enc.put_u8(0);
            put_platform(enc, liq.platform);
            put_address(enc, liq.liquidator);
            put_address(enc, liq.borrower);
            put_token(enc, liq.debt_token);
            put_wad(enc, liq.debt_repaid);
            put_wad(enc, liq.debt_repaid_usd);
            put_token(enc, liq.collateral_token);
            put_wad(enc, liq.collateral_seized);
            put_wad(enc, liq.collateral_seized_usd);
            enc.put_bool(liq.used_flash_loan);
        }
        ChainEvent::AuctionStarted {
            auction_id,
            borrower,
            collateral_token,
            collateral_amount,
            debt,
        } => {
            enc.put_u8(1);
            enc.put_u64(*auction_id);
            put_address(enc, *borrower);
            put_token(enc, *collateral_token);
            put_wad(enc, *collateral_amount);
            put_wad(enc, *debt);
        }
        ChainEvent::AuctionBid {
            auction_id,
            bidder,
            phase,
            debt_bid,
            collateral_bid,
        } => {
            enc.put_u8(2);
            enc.put_u64(*auction_id);
            put_address(enc, *bidder);
            put_phase(enc, *phase);
            put_wad(enc, *debt_bid);
            put_wad(enc, *collateral_bid);
        }
        ChainEvent::AuctionFinalized {
            auction_id,
            winner,
            debt_repaid,
            debt_repaid_usd,
            collateral_token,
            collateral_received,
            collateral_received_usd,
            borrower,
            started_at,
            last_bid_at,
            tend_bids,
            dent_bids,
            final_phase,
        } => {
            enc.put_u8(3);
            enc.put_u64(*auction_id);
            put_address(enc, *winner);
            put_wad(enc, *debt_repaid);
            put_wad(enc, *debt_repaid_usd);
            put_token(enc, *collateral_token);
            put_wad(enc, *collateral_received);
            put_wad(enc, *collateral_received_usd);
            put_address(enc, *borrower);
            enc.put_u64(*started_at);
            enc.put_u64(*last_bid_at);
            enc.put_u32(*tend_bids);
            enc.put_u32(*dent_bids);
            put_phase(enc, *final_phase);
        }
        ChainEvent::FlashLoan {
            pool,
            borrower,
            token,
            amount,
            amount_usd,
            fee,
        } => {
            enc.put_u8(4);
            put_platform(enc, *pool);
            put_address(enc, *borrower);
            put_token(enc, *token);
            put_wad(enc, *amount);
            put_wad(enc, *amount_usd);
            put_wad(enc, *fee);
        }
        ChainEvent::OracleUpdate { token, price } => {
            enc.put_u8(5);
            put_token(enc, *token);
            put_wad(enc, *price);
        }
        ChainEvent::Borrow {
            platform,
            borrower,
            token,
            amount,
        } => {
            enc.put_u8(6);
            put_platform(enc, *platform);
            put_address(enc, *borrower);
            put_token(enc, *token);
            put_wad(enc, *amount);
        }
        ChainEvent::Deposit {
            platform,
            account,
            token,
            amount,
        } => {
            enc.put_u8(7);
            put_platform(enc, *platform);
            put_address(enc, *account);
            put_token(enc, *token);
            put_wad(enc, *amount);
        }
        ChainEvent::Repay {
            platform,
            borrower,
            token,
            amount,
        } => {
            enc.put_u8(8);
            put_platform(enc, *platform);
            put_address(enc, *borrower);
            put_token(enc, *token);
            put_wad(enc, *amount);
        }
    }
}

fn get_event(dec: &mut Decoder<'_>) -> Result<ChainEvent, CodecError> {
    match dec.u8()? {
        0 => Ok(ChainEvent::Liquidation(LiquidationEvent {
            platform: get_platform(dec)?,
            liquidator: get_address(dec)?,
            borrower: get_address(dec)?,
            debt_token: get_token(dec)?,
            debt_repaid: get_wad(dec)?,
            debt_repaid_usd: get_wad(dec)?,
            collateral_token: get_token(dec)?,
            collateral_seized: get_wad(dec)?,
            collateral_seized_usd: get_wad(dec)?,
            used_flash_loan: dec.bool()?,
        })),
        1 => Ok(ChainEvent::AuctionStarted {
            auction_id: dec.u64()?,
            borrower: get_address(dec)?,
            collateral_token: get_token(dec)?,
            collateral_amount: get_wad(dec)?,
            debt: get_wad(dec)?,
        }),
        2 => Ok(ChainEvent::AuctionBid {
            auction_id: dec.u64()?,
            bidder: get_address(dec)?,
            phase: get_phase(dec)?,
            debt_bid: get_wad(dec)?,
            collateral_bid: get_wad(dec)?,
        }),
        3 => Ok(ChainEvent::AuctionFinalized {
            auction_id: dec.u64()?,
            winner: get_address(dec)?,
            debt_repaid: get_wad(dec)?,
            debt_repaid_usd: get_wad(dec)?,
            collateral_token: get_token(dec)?,
            collateral_received: get_wad(dec)?,
            collateral_received_usd: get_wad(dec)?,
            borrower: get_address(dec)?,
            started_at: dec.u64()?,
            last_bid_at: dec.u64()?,
            tend_bids: dec.u32()?,
            dent_bids: dec.u32()?,
            final_phase: get_phase(dec)?,
        }),
        4 => Ok(ChainEvent::FlashLoan {
            pool: get_platform(dec)?,
            borrower: get_address(dec)?,
            token: get_token(dec)?,
            amount: get_wad(dec)?,
            amount_usd: get_wad(dec)?,
            fee: get_wad(dec)?,
        }),
        5 => Ok(ChainEvent::OracleUpdate {
            token: get_token(dec)?,
            price: get_wad(dec)?,
        }),
        6 => Ok(ChainEvent::Borrow {
            platform: get_platform(dec)?,
            borrower: get_address(dec)?,
            token: get_token(dec)?,
            amount: get_wad(dec)?,
        }),
        7 => Ok(ChainEvent::Deposit {
            platform: get_platform(dec)?,
            account: get_address(dec)?,
            token: get_token(dec)?,
            amount: get_wad(dec)?,
        }),
        8 => Ok(ChainEvent::Repay {
            platform: get_platform(dec)?,
            borrower: get_address(dec)?,
            token: get_token(dec)?,
            amount: get_wad(dec)?,
        }),
        _ => Err(CodecError::Invalid("chain-event tag")),
    }
}

pub(crate) fn put_logged_event(enc: &mut Encoder, logged: &LoggedEvent) {
    enc.put_u64(logged.block);
    enc.put_u32(logged.tx_index);
    put_tx_hash(enc, logged.tx_hash);
    put_address(enc, logged.sender);
    enc.put_u64(logged.gas_price);
    enc.put_u64(logged.gas_used);
    put_event(enc, &logged.event);
}

fn get_logged_event(dec: &mut Decoder<'_>) -> Result<LoggedEvent, CodecError> {
    Ok(LoggedEvent {
        block: dec.u64()?,
        tx_index: dec.u32()?,
        tx_hash: get_tx_hash(dec)?,
        sender: get_address(dec)?,
        gas_price: dec.u64()?,
        gas_used: dec.u64()?,
        event: get_event(dec)?,
    })
}

// --- config / context ------------------------------------------------------

fn put_population(enc: &mut Encoder, pop: &PlatformPopulation) {
    put_platform(enc, pop.platform);
    enc.put_f64(pop.borrower_arrival_rate);
    enc.put_len(pop.max_borrowers);
    enc.put_f64(pop.median_collateral_usd);
    enc.put_f64(pop.collateral_sigma);
    enc.put_f64(pop.target_collateralization);
    enc.put_f64(pop.active_manager_share);
    enc.put_f64(pop.multi_collateral_share);
    enc.put_f64(pop.stablecoin_borrower_share);
    enc.put_len(pop.liquidator_count);
}

fn get_population(dec: &mut Decoder<'_>) -> Result<PlatformPopulation, CodecError> {
    Ok(PlatformPopulation {
        platform: get_platform(dec)?,
        borrower_arrival_rate: dec.f64()?,
        max_borrowers: get_usize(dec)?,
        median_collateral_usd: dec.f64()?,
        collateral_sigma: dec.f64()?,
        target_collateralization: dec.f64()?,
        active_manager_share: dec.f64()?,
        multi_collateral_share: dec.f64()?,
        stablecoin_borrower_share: dec.f64()?,
        liquidator_count: get_usize(dec)?,
    })
}

/// `usize` encoded like a length but without the remaining-bytes bound
/// (counts such as `max_borrowers` are data, not buffer sizes).
fn get_usize(dec: &mut Decoder<'_>) -> Result<usize, CodecError> {
    usize::try_from(dec.u64()?).map_err(|_| CodecError::Invalid("count"))
}

fn put_config(enc: &mut Encoder, config: &SimConfig) {
    enc.put_u64(config.seed);
    enc.put_u64(config.start_block);
    enc.put_u64(config.end_block);
    enc.put_u64(config.tick_blocks);
    enc.put_len(config.populations.len());
    for pop in &config.populations {
        put_population(enc, pop);
    }
    enc.put_f64(config.flash_loan_probability);
    enc.put_f64(config.stale_bot_share);
    enc.put_u64(config.maker_param_change_block);
    enc.put_u64(config.insurance_writeoff_interval);
    enc.put_u64(config.volume_sample_interval);
    enc.put_u64(config.liquidation_gas);
    enc.put_u64(config.auction_gas);
    enc.put_u64(config.user_op_gas);
    match &config.scenario {
        Some(name) => {
            enc.put_bool(true);
            enc.put_str(name);
        }
        None => enc.put_bool(false),
    }
    enc.put_bool(config.scenario_applied);
    enc.put_len(config.extra_congestion_episodes.len());
    for episode in &config.extra_congestion_episodes {
        enc.put_u64(episode.from);
        enc.put_u64(episode.to);
        enc.put_f64(episode.multiplier);
    }
}

fn get_config(dec: &mut Decoder<'_>) -> Result<SimConfig, CodecError> {
    let seed = dec.u64()?;
    let start_block = dec.u64()?;
    let end_block = dec.u64()?;
    let tick_blocks = dec.u64()?;
    let pop_count = get_usize(dec)?;
    let mut populations = Vec::new();
    for _ in 0..pop_count {
        populations.push(get_population(dec)?);
    }
    let flash_loan_probability = dec.f64()?;
    let stale_bot_share = dec.f64()?;
    let maker_param_change_block = dec.u64()?;
    let insurance_writeoff_interval = dec.u64()?;
    let volume_sample_interval = dec.u64()?;
    let liquidation_gas = dec.u64()?;
    let auction_gas = dec.u64()?;
    let user_op_gas = dec.u64()?;
    let scenario = if dec.bool()? { Some(dec.str()?) } else { None };
    let scenario_applied = dec.bool()?;
    let episode_count = get_usize(dec)?;
    let mut extra_congestion_episodes = Vec::new();
    for _ in 0..episode_count {
        extra_congestion_episodes.push(defi_chain::CongestionEpisode {
            from: dec.u64()?,
            to: dec.u64()?,
            multiplier: dec.f64()?,
        });
    }
    Ok(SimConfig {
        seed,
        start_block,
        end_block,
        tick_blocks,
        populations,
        flash_loan_probability,
        stale_bot_share,
        maker_param_change_block,
        insurance_writeoff_interval,
        volume_sample_interval,
        liquidation_gas,
        auction_gas,
        user_op_gas,
        scenario,
        scenario_applied,
        extra_congestion_episodes,
        // Deliberately not journaled: the worker count is a throughput knob
        // with byte-identical results for every value (the frame layout is
        // frozen, and replay must not depend on the recording host's core
        // count). Replays run serially unless the replaying caller re-tunes.
        book_workers: 1,
        // Also deliberately not journaled: journals carry the *observed*
        // event stream, and behavioural agent state is reconstructed from
        // the config on a live re-run, not replayed (see CONTRACTS.md).
        // Journals written before the layer existed replay unchanged.
        behavior: defi_sim::BehaviorConfig::default(),
    })
}

// --- end state -------------------------------------------------------------

fn put_position(enc: &mut Encoder, position: &Position) {
    put_address(enc, position.owner);
    match position.platform {
        Some(platform) => {
            enc.put_bool(true);
            put_platform(enc, platform);
        }
        None => enc.put_bool(false),
    }
    enc.put_len(position.collateral.len());
    for holding in &position.collateral {
        put_token(enc, holding.token);
        put_wad(enc, holding.amount);
        put_wad(enc, holding.value_usd);
        put_wad(enc, holding.liquidation_threshold);
        put_wad(enc, holding.liquidation_spread);
    }
    enc.put_len(position.debt.len());
    for holding in &position.debt {
        put_token(enc, holding.token);
        put_wad(enc, holding.amount);
        put_wad(enc, holding.value_usd);
    }
}

fn get_position(dec: &mut Decoder<'_>) -> Result<Position, CodecError> {
    let owner = get_address(dec)?;
    let platform = if dec.bool()? {
        Some(get_platform(dec)?)
    } else {
        None
    };
    let collateral_count = get_usize(dec)?;
    let mut collateral = Vec::new();
    for _ in 0..collateral_count {
        collateral.push(CollateralHolding {
            token: get_token(dec)?,
            amount: get_wad(dec)?,
            value_usd: get_wad(dec)?,
            liquidation_threshold: get_wad(dec)?,
            liquidation_spread: get_wad(dec)?,
        });
    }
    let debt_count = get_usize(dec)?;
    let mut debt = Vec::new();
    for _ in 0..debt_count {
        debt.push(DebtHolding {
            token: get_token(dec)?,
            amount: get_wad(dec)?,
            value_usd: get_wad(dec)?,
        });
    }
    Ok(Position {
        owner,
        platform,
        collateral,
        debt,
    })
}

fn put_header_frame(enc: &mut Encoder, header: &HeaderFrame) {
    put_config(enc, &header.config);
    enc.put_u64(header.time_map.genesis_block);
    enc.put_u64(header.time_map.genesis_timestamp);
    enc.put_f64(header.time_map.seconds_per_block);
    enc.put_len(header.market_spreads.len());
    for ((platform, token), spread) in &header.market_spreads {
        put_platform(enc, *platform);
        put_token(enc, *token);
        put_wad(enc, *spread);
    }
}

fn get_header_frame(dec: &mut Decoder<'_>) -> Result<HeaderFrame, CodecError> {
    let config = get_config(dec)?;
    let time_map = TimeMap {
        genesis_block: dec.u64()?,
        genesis_timestamp: dec.u64()?,
        seconds_per_block: dec.f64()?,
    };
    let spread_count = get_usize(dec)?;
    let mut market_spreads = BTreeMap::new();
    for _ in 0..spread_count {
        let platform = get_platform(dec)?;
        let token = get_token(dec)?;
        market_spreads.insert((platform, token), get_wad(dec)?);
    }
    Ok(HeaderFrame {
        config,
        time_map,
        market_spreads,
    })
}

fn put_end_frame(enc: &mut Encoder, end: &EndFrame) {
    put_end_frame_parts(
        enc,
        end.snapshot_block,
        &end.final_positions,
        &end.headers,
        end.oracle_history
            .iter()
            .map(|(token, points)| (*token, points.as_slice())),
    );
}

/// Encode the end-frame payload straight from borrowed run state — the
/// writer's `on_run_end` uses this to journal the final books, headers and
/// oracle history without first deep-cloning them into an [`EndFrame`].
pub(crate) fn put_end_frame_parts<'a, I>(
    enc: &mut Encoder,
    snapshot_block: u64,
    final_positions: &BTreeMap<Platform, Vec<Position>>,
    headers: &[BlockHeader],
    oracle_history: I,
) where
    I: ExactSizeIterator<Item = (Token, &'a [PricePoint])>,
{
    enc.put_u64(snapshot_block);
    enc.put_len(final_positions.len());
    for (platform, positions) in final_positions {
        put_platform(enc, *platform);
        enc.put_len(positions.len());
        for position in positions {
            put_position(enc, position);
        }
    }
    enc.put_len(headers.len());
    for header in headers {
        enc.put_u64(header.number);
        enc.put_u64(header.timestamp);
        enc.put_u64(header.gas_used);
        enc.put_u64(header.gas_limit);
        enc.put_u64(header.median_gas_price);
        enc.put_u32(header.tx_count);
        enc.put_u32(header.mempool_backlog);
    }
    enc.put_len(oracle_history.len());
    for (token, points) in oracle_history {
        put_token(enc, token);
        enc.put_len(points.len());
        for point in points {
            enc.put_u64(point.block);
            put_wad(enc, point.price);
        }
    }
}

fn get_end_frame(dec: &mut Decoder<'_>) -> Result<EndFrame, CodecError> {
    let snapshot_block = dec.u64()?;
    let platform_count = get_usize(dec)?;
    let mut final_positions = BTreeMap::new();
    for _ in 0..platform_count {
        let platform = get_platform(dec)?;
        let position_count = get_usize(dec)?;
        let mut positions = Vec::new();
        for _ in 0..position_count {
            positions.push(get_position(dec)?);
        }
        final_positions.insert(platform, positions);
    }
    let header_count = get_usize(dec)?;
    let mut headers = Vec::new();
    for _ in 0..header_count {
        headers.push(BlockHeader {
            number: dec.u64()?,
            timestamp: dec.u64()?,
            gas_used: dec.u64()?,
            gas_limit: dec.u64()?,
            median_gas_price: dec.u64()?,
            tx_count: dec.u32()?,
            mempool_backlog: dec.u32()?,
        });
    }
    let token_count = get_usize(dec)?;
    let mut oracle_history = Vec::new();
    for _ in 0..token_count {
        let token = get_token(dec)?;
        let point_count = get_usize(dec)?;
        let mut points = Vec::new();
        for _ in 0..point_count {
            points.push(PricePoint {
                block: dec.u64()?,
                price: get_wad(dec)?,
            });
        }
        oracle_history.push((token, points));
    }
    Ok(EndFrame {
        snapshot_block,
        final_positions,
        headers,
        oracle_history,
    })
}

// --- frame-level API -------------------------------------------------------

/// Encode one frame's payload (without the tag/len/crc envelope — the writer
/// adds those) and return `(tag, payload)`.
pub fn encode_frame(frame: &Frame) -> (u8, Vec<u8>) {
    encode_frame_into(frame, Vec::new())
}

/// Like [`encode_frame`], but reuses `buf`'s capacity for the payload — the
/// writer recycles one scratch buffer across the run's thousands of frames.
pub fn encode_frame_into(frame: &Frame, buf: Vec<u8>) -> (u8, Vec<u8>) {
    let mut enc = Encoder::with_buffer(buf);
    let tag = match frame {
        Frame::Header(header) => {
            put_header_frame(&mut enc, header);
            TAG_HEADER
        }
        Frame::Tick(tick) => {
            enc.put_u64(tick.block);
            enc.put_u64(tick.tick_index);
            TAG_TICK
        }
        Frame::Event(logged) => {
            put_logged_event(&mut enc, logged);
            TAG_EVENT
        }
        Frame::LiquidationMeta(meta) => {
            put_wad(&mut enc, meta.eth_price);
            put_opt_wad(&mut enc, meta.health_factor_before);
            TAG_LIQUIDATION_META
        }
        Frame::Volume(sample) => {
            enc.put_u64(sample.block);
            put_platform(&mut enc, sample.platform);
            put_wad(&mut enc, sample.total_collateral_usd);
            put_wad(&mut enc, sample.dai_eth_collateral_usd);
            enc.put_u32(sample.open_positions);
            TAG_VOLUME
        }
        Frame::End(end) => {
            put_end_frame(&mut enc, end);
            TAG_END
        }
        Frame::Eof { frame_count } => {
            enc.put_u64(*frame_count);
            TAG_EOF
        }
    };
    (tag, enc.into_bytes())
}

/// Decode one frame from its tag and payload. Strict: every payload byte
/// must be consumed, so a mis-framed payload can't half-decode.
pub fn decode_frame(tag: u8, payload: &[u8]) -> Result<Frame, CodecError> {
    let mut dec = Decoder::new(payload);
    let frame = match tag {
        TAG_HEADER => Frame::Header(Box::new(get_header_frame(&mut dec)?)),
        TAG_TICK => Frame::Tick(TickFrame {
            block: dec.u64()?,
            tick_index: dec.u64()?,
        }),
        TAG_EVENT => Frame::Event(get_logged_event(&mut dec)?),
        TAG_LIQUIDATION_META => Frame::LiquidationMeta(LiquidationMetaFrame {
            eth_price: get_wad(&mut dec)?,
            health_factor_before: get_opt_wad(&mut dec)?,
        }),
        TAG_VOLUME => Frame::Volume(VolumeSample {
            block: dec.u64()?,
            platform: get_platform(&mut dec)?,
            total_collateral_usd: get_wad(&mut dec)?,
            dai_eth_collateral_usd: get_wad(&mut dec)?,
            open_positions: dec.u32()?,
        }),
        TAG_END => Frame::End(Box::new(get_end_frame(&mut dec)?)),
        TAG_EOF => Frame::Eof {
            frame_count: dec.u64()?,
        },
        _ => return Err(CodecError::Invalid("frame tag")),
    };
    if !dec.is_exhausted() {
        return Err(CodecError::Invalid("trailing payload bytes"));
    }
    Ok(frame)
}
