//! The replay side: [`JournalReader`] validates a journal file and re-drives
//! any [`SimObserver`] with the recorded observation stream.
//!
//! Opening is strict — magic, version, per-frame CRC, exact payload decode
//! and the structural rules (header first, end state last, authenticated
//! trailer) are all checked up front, so [`JournalReader::replay`] works from
//! a known-good frame list and cannot fail on malformed input. Every failure
//! is a typed [`JournalError`] carrying the path and byte offset; nothing in
//! this module panics on untrusted file contents.
//!
//! Replay limitation: `on_tick_end` contexts (live engine internals) are not
//! journaled, so observers whose `wants_tick_end` returns true — e.g. the
//! invariant checker — cannot be driven from a journal. The analytics
//! `StudyCollector` pipeline never uses tick-end hooks, which is what makes
//! offline byte-identical artefact rendering possible.

use std::fs;
use std::path::{Path, PathBuf};

use defi_chain::{Blockchain, ChainConfig, EventLog};
use defi_oracle::{OracleConfig, PriceOracle};
use defi_sim::{LiquidationObservation, RunEnd, RunStart, SimObserver, TickStart};

use crate::codec::crc32;
use crate::error::JournalError;
use crate::frames::{decode_frame, Frame, HeaderFrame, MAGIC, VERSION};

/// A validated, fully decoded journal, ready to replay any number of times.
#[derive(Debug)]
pub struct JournalReader {
    path: PathBuf,
    header: HeaderFrame,
    /// Body frames after the header, in capture order; the `End` frame is
    /// guaranteed (by `open`) to be last.
    frames: Vec<Frame>,
}

impl JournalReader {
    /// Read and validate the journal at `path`: magic, version, every
    /// frame's CRC and decode, and the structural frame-order rules.
    pub fn open(path: &Path) -> Result<JournalReader, JournalError> {
        let bytes = fs::read(path).map_err(|source| JournalError::Io {
            path: path.to_path_buf(),
            context: "read journal",
            source,
        })?;
        let magic = bytes.get(..4).ok_or_else(|| JournalError::Truncated {
            path: path.to_path_buf(),
            offset: bytes.len() as u64,
        })?;
        if magic != MAGIC {
            return Err(JournalError::BadMagic {
                path: path.to_path_buf(),
            });
        }
        let version_bytes = bytes.get(4..6).ok_or_else(|| JournalError::Truncated {
            path: path.to_path_buf(),
            offset: bytes.len() as u64,
        })?;
        let version = u16::from_le_bytes([
            version_bytes.first().copied().unwrap_or(0),
            version_bytes.get(1).copied().unwrap_or(0),
        ]);
        if version > VERSION {
            return Err(JournalError::UnsupportedVersion {
                path: path.to_path_buf(),
                found: version,
                supported: VERSION,
            });
        }

        let mut offset = 6usize;
        let mut frames: Vec<Frame> = Vec::new();
        let mut header: Option<HeaderFrame> = None;
        let mut saw_eof = false;
        while offset < bytes.len() {
            let truncated = || JournalError::Truncated {
                path: path.to_path_buf(),
                offset: offset as u64,
            };
            if saw_eof {
                return Err(JournalError::Corrupt {
                    path: path.to_path_buf(),
                    offset: offset as u64,
                    detail: "data after end-of-journal trailer".to_string(),
                });
            }
            // tag u8 · len u32 · payload · crc u32
            let envelope = bytes.get(offset..offset + 5).ok_or_else(truncated)?;
            let tag = envelope.first().copied().ok_or_else(truncated)?;
            let len_bytes: [u8; 4] = envelope
                .get(1..5)
                .and_then(|s| s.try_into().ok())
                .ok_or_else(truncated)?;
            let payload_len = u32::from_le_bytes(len_bytes) as usize;
            let payload_start = offset + 5;
            let payload_end = payload_start
                .checked_add(payload_len)
                .ok_or_else(truncated)?;
            let payload = bytes
                .get(payload_start..payload_end)
                .ok_or_else(truncated)?;
            let crc_bytes: [u8; 4] = bytes
                .get(payload_end..payload_end + 4)
                .and_then(|s| s.try_into().ok())
                .ok_or_else(truncated)?;
            let stored_crc = u32::from_le_bytes(crc_bytes);
            let framed = bytes.get(offset..payload_end).ok_or_else(truncated)?;
            if crc32(framed) != stored_crc {
                return Err(JournalError::Corrupt {
                    path: path.to_path_buf(),
                    offset: offset as u64,
                    detail: "CRC mismatch".to_string(),
                });
            }
            let frame = decode_frame(tag, payload).map_err(|err| JournalError::Corrupt {
                path: path.to_path_buf(),
                offset: offset as u64,
                detail: err.to_string(),
            })?;
            match frame {
                Frame::Header(h) => {
                    if header.is_some() || !frames.is_empty() {
                        return Err(JournalError::Corrupt {
                            path: path.to_path_buf(),
                            offset: offset as u64,
                            detail: "duplicate header frame".to_string(),
                        });
                    }
                    header = Some(*h);
                }
                Frame::Eof { frame_count } => {
                    // The trailer authenticates the body frame count
                    // (header + the frames collected after it).
                    let body = frames.len() as u64 + u64::from(header.is_some());
                    if frame_count != body {
                        return Err(JournalError::Corrupt {
                            path: path.to_path_buf(),
                            offset: offset as u64,
                            detail: format!("trailer counts {frame_count} frames, file has {body}"),
                        });
                    }
                    saw_eof = true;
                }
                other => {
                    if header.is_none() {
                        return Err(JournalError::Corrupt {
                            path: path.to_path_buf(),
                            offset: offset as u64,
                            detail: "first frame is not the header".to_string(),
                        });
                    }
                    frames.push(other);
                }
            }
            offset = payload_end + 4;
        }
        if !saw_eof {
            return Err(JournalError::Truncated {
                path: path.to_path_buf(),
                offset: offset as u64,
            });
        }
        let header = header.ok_or_else(|| JournalError::Corrupt {
            path: path.to_path_buf(),
            offset: 6,
            detail: "journal has no header frame".to_string(),
        })?;
        if !matches!(frames.last(), Some(Frame::End(_))) {
            return Err(JournalError::Corrupt {
                path: path.to_path_buf(),
                offset: offset as u64,
                detail: "journal has no end-state frame".to_string(),
            });
        }
        Ok(JournalReader {
            path: path.to_path_buf(),
            header,
            frames,
        })
    }

    /// The recorded run context.
    pub fn header(&self) -> &HeaderFrame {
        &self.header
    }

    /// Body frames after the header (ticks, events, metadata, volumes, end).
    pub fn frames(&self) -> &[Frame] {
        &self.frames
    }

    /// Re-drive `observer` with the recorded observation stream, ending with
    /// a reconstructed [`RunEnd`] built from the journaled end state.
    ///
    /// Observers that request `on_tick_end` are rejected: tick-end contexts
    /// reference live engine state that is not journaled.
    pub fn replay(&self, observer: &mut dyn SimObserver) -> Result<(), JournalError> {
        if observer.wants_tick_end() {
            return Err(JournalError::Corrupt {
                path: self.path.clone(),
                offset: 0,
                detail: "observer requires on_tick_end, which journals do not record".to_string(),
            });
        }
        observer.on_run_start(&RunStart {
            config: &self.header.config,
            time_map: self.header.time_map,
            market_spreads: self.header.market_spreads.clone(),
        });

        let mut frames = self.frames.iter().peekable();
        while let Some(frame) = frames.next() {
            match frame {
                Frame::Tick(tick) => observer.on_tick_start(&TickStart {
                    block: tick.block,
                    tick_index: tick.tick_index,
                }),
                Frame::Event(logged) => {
                    observer.on_event(logged);
                    if let Some(Frame::LiquidationMeta(meta)) = frames.peek() {
                        frames.next();
                        observer.on_liquidation(&LiquidationObservation {
                            logged,
                            eth_price: meta.eth_price,
                            health_factor_before: meta.health_factor_before,
                        });
                    }
                }
                Frame::LiquidationMeta(_) => {
                    // `open` validated frame integrity, not adjacency; a
                    // meta frame that doesn't follow its event is corrupt.
                    return Err(JournalError::Corrupt {
                        path: self.path.clone(),
                        offset: 0,
                        detail: "liquidation metadata without a preceding event".to_string(),
                    });
                }
                Frame::Volume(sample) => observer.on_volume_sample(sample),
                Frame::End(end) => {
                    // Rebuild the chain and oracle the way `on_run_end`
                    // consumers read them: headers, the event log, and the
                    // full price history.
                    let mut events = EventLog::new();
                    for body in &self.frames {
                        if let Frame::Event(logged) = body {
                            events.push(logged.clone());
                        }
                    }
                    let chain = Blockchain::from_archive(
                        ChainConfig {
                            start_block: self.header.config.start_block,
                            time_map: self.header.time_map,
                            ..ChainConfig::default()
                        },
                        end.headers.clone(),
                        events,
                    );
                    let mut oracle = PriceOracle::new(OracleConfig::every_update());
                    for (token, points) in &end.oracle_history {
                        for point in points {
                            oracle.set_price(point.block, *token, point.price);
                        }
                    }
                    observer.on_run_end(&RunEnd {
                        config: &self.header.config,
                        snapshot_block: end.snapshot_block,
                        final_positions: &end.final_positions,
                        chain: &chain,
                        market_oracle: &oracle,
                    });
                }
                Frame::Header(_) | Frame::Eof { .. } => {
                    // `open` never stores these in the body list.
                }
            }
        }
        Ok(())
    }
}
