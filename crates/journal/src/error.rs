//! Typed, actionable journal errors: every variant carries the file path and
//! enough detail to say *what* to do about it, and I/O failures keep their
//! source chained for `--json`-style reporting.

use std::error::Error;
use std::fmt;
use std::io;
use std::path::PathBuf;

/// Why a journal could not be written, opened or replayed.
#[derive(Debug)]
pub enum JournalError {
    /// An underlying filesystem operation failed.
    Io {
        /// File the operation targeted.
        path: PathBuf,
        /// What the journal layer was doing ("create journal", "flush
        /// journal", "read journal").
        context: &'static str,
        /// The operating-system error.
        source: io::Error,
    },
    /// The file does not start with the `DJRN` magic — not a journal.
    BadMagic {
        /// File that was opened.
        path: PathBuf,
    },
    /// The journal was written by an incompatible format version.
    UnsupportedVersion {
        /// File that was opened.
        path: PathBuf,
        /// Version recorded in the file header.
        found: u16,
        /// Highest version this reader understands.
        supported: u16,
    },
    /// A frame failed its CRC, decoded to garbage, or the frame sequence
    /// violates the format's structural rules.
    Corrupt {
        /// File that was opened.
        path: PathBuf,
        /// Byte offset of the offending frame.
        offset: u64,
        /// What exactly was wrong.
        detail: String,
    },
    /// The file ends mid-frame or without the end-of-journal trailer —
    /// typically a run that crashed before [`JournalWriter::finish`]
    /// (crate::JournalWriter::finish).
    Truncated {
        /// File that was opened.
        path: PathBuf,
        /// Byte offset where the data ran out.
        offset: u64,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io {
                path,
                context,
                source,
            } => {
                write!(f, "{context} {}: {source}", path.display())
            }
            JournalError::BadMagic { path } => {
                write!(
                    f,
                    "{}: not a journal file (missing DJRN magic)",
                    path.display()
                )
            }
            JournalError::UnsupportedVersion {
                path,
                found,
                supported,
            } => {
                write!(
                    f,
                    "{}: journal format v{found} is newer than the supported v{supported} — \
                     re-record the run with this build",
                    path.display()
                )
            }
            JournalError::Corrupt {
                path,
                offset,
                detail,
            } => {
                write!(
                    f,
                    "{}: corrupt frame at byte {offset}: {detail}",
                    path.display()
                )
            }
            JournalError::Truncated { path, offset } => {
                write!(
                    f,
                    "{}: truncated at byte {offset} (run did not finish cleanly; \
                     re-record with --journal)",
                    path.display()
                )
            }
        }
    }
}

impl Error for JournalError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            JournalError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}
