//! The concurrent read frontend: a [`RiskService`] ticks a simulation
//! [`Session`] on its write side and publishes immutable, epoch-stamped
//! [`ServiceSnapshot`]s that any number of reader threads query through a
//! cloned [`SnapshotHandle`].
//!
//! Publication is copy-on-write: each tick exports one [`BookSnapshot`] per
//! platform (already priced, banded and index-carrying), freezes them into an
//! `Arc<ServiceSnapshot>`, and swaps the shared slot under a write lock held
//! only for the pointer swap. Readers take the read lock just long enough to
//! clone the `Arc`, then run every query — point lookups, band listings,
//! [`breach_under`](ServiceSnapshot::breach_under) stress scans — against
//! their private frozen copy with no further synchronisation. Reads never
//! block the simulation loop and never observe a half-updated book.
//!
//! Consistency contract: a published snapshot is a *transactionally
//! consistent* view of one tick boundary — all platforms at the same block,
//! totals equal to the fold of the entries, epochs strictly increasing.

use std::collections::BTreeMap;
use std::sync::{Arc, RwLock};

use defi_lending::{BookSnapshot, BookTotals, BreachReport, SnapshotBand};
use defi_sim::{Session, SessionStatus, SimConfig, SimError, SimObserver, SimulationEngine};
use defi_types::{Address, BlockNumber, Platform, Token};

/// One immutable, epoch-stamped view of every platform's position book.
#[derive(Debug)]
pub struct ServiceSnapshot {
    epoch: u64,
    block: BlockNumber,
    books: BTreeMap<Platform, BookSnapshot>,
}

impl ServiceSnapshot {
    /// Publication sequence number (strictly increasing; 0 is the empty
    /// pre-first-tick snapshot).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Chain block the snapshot was taken at.
    pub fn block(&self) -> BlockNumber {
        self.block
    }

    /// The frozen book of one platform.
    pub fn book(&self, platform: Platform) -> Option<&BookSnapshot> {
        self.books.get(&platform)
    }

    /// Iterate every platform's frozen book.
    pub fn books(&self) -> impl Iterator<Item = (&Platform, &BookSnapshot)> {
        self.books.iter()
    }

    /// Total open positions across all platforms.
    pub fn open_positions(&self) -> usize {
        self.books.values().map(BookSnapshot::len).sum()
    }

    /// Aggregate totals across all platforms (saturating fold of the
    /// per-book totals).
    pub fn totals(&self) -> BookTotals {
        let mut totals = BookTotals::default();
        for book in self.books.values() {
            let t = book.totals();
            totals.collateral_usd = totals.collateral_usd.saturating_add(t.collateral_usd);
            totals.debt_usd = totals.debt_usd.saturating_add(t.debt_usd);
            totals.dai_eth_collateral_usd = totals
                .dai_eth_collateral_usd
                .saturating_add(t.dai_eth_collateral_usd);
            totals.open_positions = totals.open_positions.saturating_add(t.open_positions);
        }
        totals
    }

    /// Point lookup: the first platform holding a position for `account`,
    /// in platform order.
    pub fn position(&self, account: Address) -> Option<(Platform, &defi_core::position::Position)> {
        self.books
            .iter()
            .find_map(|(platform, book)| book.position(account).map(|p| (*platform, p)))
    }

    /// Accounts in `band` across all platforms, as `(platform, address)` in
    /// platform-then-address order.
    pub fn band(&self, band: SnapshotBand) -> Vec<(Platform, Address)> {
        let mut out = Vec::new();
        for (platform, book) in &self.books {
            for address in book.band(band) {
                out.push((*platform, address));
            }
        }
        out
    }

    /// Accounts below HF 1 across all platforms.
    pub fn liquidatable(&self) -> Vec<(Platform, Address)> {
        self.band(SnapshotBand::Liquidatable)
    }

    /// Accounts in any at-risk band across all platforms.
    pub fn at_risk(&self) -> Vec<(Platform, Address)> {
        let mut out = Vec::new();
        for (platform, book) in &self.books {
            book.for_each_at_risk(&mut |address, _| out.push((*platform, *address)));
        }
        out
    }

    /// What-if stress query per platform: which accounts breach HF 1 if
    /// `token` moves by `shock_bps` basis points (−800 = −8 %). Served off
    /// each book's critical-price and envelope indexes; see
    /// [`BookSnapshot::breach_under`].
    pub fn breach_under(&self, token: Token, shock_bps: i32) -> Vec<(Platform, BreachReport)> {
        self.books
            .iter()
            .map(|(platform, book)| (*platform, book.breach_under(token, shock_bps)))
            .collect()
    }
}

/// Cloneable, thread-safe handle onto the service's latest snapshot.
#[derive(Debug, Clone)]
pub struct SnapshotHandle {
    slot: Arc<RwLock<Arc<ServiceSnapshot>>>,
}

impl SnapshotHandle {
    fn new(initial: ServiceSnapshot) -> SnapshotHandle {
        SnapshotHandle {
            slot: Arc::new(RwLock::new(Arc::new(initial))),
        }
    }

    /// The latest published snapshot. Lock-free after the `Arc` clone; a
    /// poisoned lock (a reader panicked mid-clone) still yields the pointer,
    /// since the snapshot itself is immutable.
    pub fn load(&self) -> Arc<ServiceSnapshot> {
        match self.slot.read() {
            Ok(guard) => Arc::clone(&guard),
            Err(poisoned) => Arc::clone(&poisoned.into_inner()),
        }
    }

    fn publish(&self, snapshot: ServiceSnapshot) {
        let next = Arc::new(snapshot);
        match self.slot.write() {
            Ok(mut guard) => *guard = next,
            Err(poisoned) => *poisoned.into_inner() = next,
        }
    }
}

/// The write side: owns the simulation [`Session`], ticks it, and publishes
/// one frozen [`ServiceSnapshot`] per tick.
///
/// `RiskService` is `Send` but not `Sync` by design — one writer thread ticks
/// it while reader threads consume cloned [`SnapshotHandle`]s.
pub struct RiskService {
    session: Session,
    handle: SnapshotHandle,
    epoch: u64,
}

impl RiskService {
    /// Build the engine for `config`, start a session, and publish the
    /// epoch-0 (empty) snapshot.
    pub fn new(config: SimConfig) -> RiskService {
        let session = SimulationEngine::new(config).session();
        let block = session.current_block();
        let handle = SnapshotHandle::new(ServiceSnapshot {
            epoch: 0,
            block,
            books: BTreeMap::new(),
        });
        RiskService {
            session,
            handle,
            epoch: 0,
        }
    }

    /// A new handle for a reader thread.
    pub fn handle(&self) -> SnapshotHandle {
        self.handle.clone()
    }

    /// Epoch of the most recently published snapshot.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Whether the underlying session has run every tick.
    pub fn is_complete(&self) -> bool {
        self.session.is_complete()
    }

    /// Fraction of ticks completed.
    pub fn progress(&self) -> f64 {
        self.session.progress()
    }

    /// Run one simulation tick through `observer`, then publish a fresh
    /// snapshot of every platform's book.
    pub fn tick(&mut self, observer: &mut dyn SimObserver) -> Result<SessionStatus, SimError> {
        let status = self.session.step(observer)?;
        self.publish_snapshot();
        Ok(status)
    }

    /// Finish the session (final snapshot, `on_run_end`) and return the
    /// report, consuming the service. Readers keep their last snapshot.
    pub fn finish(
        self,
        observer: &mut dyn SimObserver,
    ) -> Result<defi_sim::SimulationReport, SimError> {
        self.session.finish(observer)
    }

    fn publish_snapshot(&mut self) {
        self.epoch = self.epoch.saturating_add(1);
        let block = self.session.current_block();
        let mut books = BTreeMap::new();
        for platform in self.session.platforms() {
            if let Some(book) = self
                .session
                .inspect_protocol(platform, |protocol, oracle| protocol.book_snapshot(oracle))
            {
                books.insert(platform, book);
            }
        }
        self.handle.publish(ServiceSnapshot {
            epoch: self.epoch,
            block,
            books,
        });
    }
}

impl std::fmt::Debug for RiskService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RiskService")
            .field("epoch", &self.epoch)
            .field("block", &self.session.current_block())
            .field("complete", &self.session.is_complete())
            .finish()
    }
}
