//! The capture side: a [`JournalWriter`] is a [`SimObserver`] that streams
//! every observation into the append-only journal file.
//!
//! Compose it with other observers through
//! [`MultiObserver`](defi_sim::MultiObserver) — `repro --journal` runs the
//! `StudyCollector` and the writer side by side, so the journal records
//! exactly the stream the collector consumed.
//!
//! Observer hooks cannot return errors, so I/O failures are *deferred*: the
//! first failure is remembered, subsequent frames are dropped, and
//! [`JournalWriter::finish`] surfaces the stored error instead of writing the
//! end-of-journal trailer. A journal is only complete once `finish`
//! returns `Ok`.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

use defi_chain::LoggedEvent;
use defi_sim::{LiquidationObservation, RunEnd, RunStart, SimObserver, TickStart, VolumeSample};

use crate::codec::{crc32_finish, crc32_init, crc32_update, Encoder};
use crate::error::JournalError;
use crate::frames::{
    encode_frame_into, put_end_frame_parts, put_logged_event, Frame, HeaderFrame,
    LiquidationMetaFrame, TickFrame, MAGIC, TAG_END, TAG_EVENT, VERSION,
};

/// Streams simulation observations into a journal file.
pub struct JournalWriter {
    out: BufWriter<File>,
    path: PathBuf,
    frames: u64,
    /// Recycled payload buffer — one allocation for the whole run.
    scratch: Vec<u8>,
    error: Option<JournalError>,
    finished: bool,
}

impl JournalWriter {
    /// Create (truncating) the journal at `path` and write the file header.
    pub fn create(path: &Path) -> Result<JournalWriter, JournalError> {
        let file = File::create(path).map_err(|source| JournalError::Io {
            path: path.to_path_buf(),
            context: "create journal",
            source,
        })?;
        let mut out = BufWriter::with_capacity(1 << 16, file);
        let mut preamble = Vec::with_capacity(6);
        preamble.extend_from_slice(&MAGIC);
        preamble.extend_from_slice(&VERSION.to_le_bytes());
        out.write_all(&preamble)
            .map_err(|source| JournalError::Io {
                path: path.to_path_buf(),
                context: "write journal header",
                source,
            })?;
        Ok(JournalWriter {
            out,
            path: path.to_path_buf(),
            frames: 0,
            scratch: Vec::new(),
            error: None,
            finished: false,
        })
    }

    /// Body frames emitted so far.
    pub fn frames_written(&self) -> u64 {
        self.frames
    }

    /// Serialize and append one frame; on I/O failure, store the error and
    /// drop every later frame (surfaced by [`JournalWriter::finish`]).
    fn emit(&mut self, frame: &Frame) {
        if self.error.is_some() {
            return;
        }
        let (tag, payload) = encode_frame_into(frame, std::mem::take(&mut self.scratch));
        self.append(tag, payload);
    }

    /// Append one already-encoded payload as a `tag · len · payload · crc`
    /// frame. The CRC streams over envelope and payload, so nothing is
    /// copied; the payload buffer is recycled as the next frame's scratch.
    fn append(&mut self, tag: u8, payload: Vec<u8>) {
        let mut head = [0u8; 5];
        head[0] = tag;
        head[1..5].copy_from_slice(&(payload.len() as u32).to_le_bytes());
        let crc = crc32_finish(crc32_update(crc32_update(crc32_init(), &head), &payload));
        let result = self
            .out
            .write_all(&head)
            .and_then(|()| self.out.write_all(&payload))
            .and_then(|()| self.out.write_all(&crc.to_le_bytes()));
        self.scratch = payload;
        if let Err(source) = result {
            self.error = Some(JournalError::Io {
                path: self.path.clone(),
                context: "append journal frame",
                source,
            });
            return;
        }
        self.frames += 1;
    }

    /// Write the end-of-journal trailer, flush, and surface any deferred
    /// write error. Must be called after the run; a journal without a clean
    /// `finish` reads back as [`JournalError::Truncated`].
    pub fn finish(mut self) -> Result<(), JournalError> {
        self.finished = true;
        if let Some(error) = self.error.take() {
            return Err(error);
        }
        let trailer = Frame::Eof {
            frame_count: self.frames,
        };
        self.emit(&trailer);
        if let Some(error) = self.error.take() {
            return Err(error);
        }
        self.out.flush().map_err(|source| JournalError::Io {
            path: self.path.clone(),
            context: "flush journal",
            source,
        })
    }
}

impl std::fmt::Debug for JournalWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JournalWriter")
            .field("path", &self.path)
            .field("frames", &self.frames)
            .field("failed", &self.error.is_some())
            .finish()
    }
}

impl SimObserver for JournalWriter {
    fn on_run_start(&mut self, run: &RunStart<'_>) {
        let header = HeaderFrame {
            config: run.config.clone(),
            time_map: run.time_map,
            market_spreads: run.market_spreads.clone(),
        };
        self.emit(&Frame::Header(Box::new(header)));
    }

    fn on_tick_start(&mut self, tick: &TickStart) {
        self.emit(&Frame::Tick(TickFrame {
            block: tick.block,
            tick_index: tick.tick_index,
        }));
    }

    fn on_event(&mut self, logged: &LoggedEvent) {
        if self.error.is_some() {
            return;
        }
        // Borrowed encode: events are the bulk of the stream, so skip the
        // owned `Frame::Event` detour the generic `emit` would need.
        let mut enc = Encoder::with_buffer(std::mem::take(&mut self.scratch));
        put_logged_event(&mut enc, logged);
        self.append(TAG_EVENT, enc.into_bytes());
    }

    fn on_liquidation(&mut self, liquidation: &LiquidationObservation<'_>) {
        // The settlement event itself was just journaled by `on_event` (the
        // engine fires `on_liquidation` right after it); this frame carries
        // only the observation's extra context and binds to the preceding
        // event frame by position.
        self.emit(&Frame::LiquidationMeta(LiquidationMetaFrame {
            eth_price: liquidation.eth_price,
            health_factor_before: liquidation.health_factor_before,
        }));
    }

    fn on_volume_sample(&mut self, sample: &VolumeSample) {
        self.emit(&Frame::Volume(*sample));
    }

    fn on_run_end(&mut self, end: &RunEnd<'_>) {
        if self.error.is_some() {
            return;
        }
        // Borrowed encode: the end frame carries every final position, block
        // header and oracle write — encoding straight from the run's own
        // state avoids deep-cloning it all into an `EndFrame` first. The
        // oracle history is journaled per token in sorted token order;
        // replaying those writes through a fresh every-update oracle
        // reproduces the original's current prices, `price_at` lookups and
        // `history` slices.
        let tokens = end.market_oracle.tokens();
        let mut enc = Encoder::with_buffer(std::mem::take(&mut self.scratch));
        put_end_frame_parts(
            &mut enc,
            end.snapshot_block,
            end.final_positions,
            end.chain.headers(),
            tokens
                .iter()
                .map(|&token| (token, end.market_oracle.history(token))),
        );
        self.append(TAG_END, enc.into_bytes());
    }
}
