//! Hand-rolled binary codec and CRC32 — the only serializer the journal
//! format uses (no crates.io dependency).
//!
//! Primitives: `u8`/`u16`/`u32` fixed-width little-endian, `u64`/`u128` as
//! LEB128 varints, `f64` via its exact 8-byte IEEE bit pattern, booleans as
//! one byte, and length-prefixed byte strings. The [`Decoder`] never panics:
//! every read is bounds-checked and reports [`CodecError::UnexpectedEnd`]
//! instead of slicing out of range.

use std::fmt;

/// A decode failure inside one frame payload (mapped to
/// [`JournalError::Corrupt`](crate::JournalError::Corrupt) with the frame
/// offset by the reader).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// The payload ended before the value it promised.
    UnexpectedEnd,
    /// A value decoded to something the schema forbids.
    Invalid(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEnd => write!(f, "payload ended mid-value"),
            CodecError::Invalid(what) => write!(f, "invalid {what}"),
        }
    }
}

/// Append-only byte sink for one frame payload.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// A fresh, empty encoder.
    pub fn new() -> Encoder {
        Encoder::default()
    }

    /// An encoder that reuses `buf`'s capacity (cleared first) — the writer's
    /// hot loop recycles one scratch buffer instead of allocating per frame.
    pub fn with_buffer(mut buf: Vec<u8>) -> Encoder {
        buf.clear();
        Encoder { buf }
    }

    /// Finish and take the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u16`, little-endian.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64` as a LEB128 varint (1–10 bytes). Journal values are
    /// overwhelmingly small — block numbers, counts, gas — so varints shrink
    /// the file (and its write cost) by roughly half versus fixed width.
    pub fn put_u64(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7F) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Append a `u128` as a LEB128 varint (1–19 bytes).
    pub fn put_u128(&mut self, mut v: u128) {
        loop {
            let byte = (v & 0x7F) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Append a boolean as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Append an `f64` as its exact IEEE-754 bit pattern (round-trips every
    /// value, including NaN payloads — determinism over readability). Fixed
    /// 8 bytes: bit patterns are high-entropy, so a varint would expand them.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Append a collection length (`usize` widened to `u64`).
    pub fn put_len(&mut self, len: usize) {
        self.put_u64(len as u64);
    }

    /// Append raw bytes with no length prefix (fixed-width fields).
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_len(s.len());
        self.put_bytes(s.as_bytes());
    }
}

/// Bounds-checked cursor over one frame payload.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Decode from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Decoder<'a> {
        Decoder { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    /// Whether every byte was consumed (frames must decode exactly).
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    /// Take the next `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let end = self.pos.checked_add(n).ok_or(CodecError::UnexpectedEnd)?;
        let bytes = self
            .buf
            .get(self.pos..end)
            .ok_or(CodecError::UnexpectedEnd)?;
        self.pos = end;
        Ok(bytes)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        let bytes = self.take(1)?;
        bytes.first().copied().ok_or(CodecError::UnexpectedEnd)
    }

    /// Read a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, CodecError> {
        let bytes = self.take(2)?;
        let arr: [u8; 2] = bytes.try_into().map_err(|_| CodecError::UnexpectedEnd)?;
        Ok(u16::from_le_bytes(arr))
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        let bytes = self.take(4)?;
        let arr: [u8; 4] = bytes.try_into().map_err(|_| CodecError::UnexpectedEnd)?;
        Ok(u32::from_le_bytes(arr))
    }

    /// Read a LEB128 varint `u64`, rejecting encodings whose bits overflow
    /// the width.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        let mut value = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.u8()?;
            let group = u64::from(byte & 0x7F);
            if shift >= 64 || (shift > 57 && (group >> (64 - shift)) != 0) {
                return Err(CodecError::Invalid("varint"));
            }
            value |= group << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
        }
    }

    /// Read a LEB128 varint `u128`, rejecting encodings whose bits overflow
    /// the width.
    pub fn u128(&mut self) -> Result<u128, CodecError> {
        let mut value = 0u128;
        let mut shift = 0u32;
        loop {
            let byte = self.u8()?;
            let group = u128::from(byte & 0x7F);
            if shift >= 128 || (shift > 121 && (group >> (128 - shift)) != 0) {
                return Err(CodecError::Invalid("varint"));
            }
            value |= group << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
        }
    }

    /// Read a boolean (strictly 0 or 1).
    pub fn bool(&mut self) -> Result<bool, CodecError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CodecError::Invalid("boolean")),
        }
    }

    /// Read an `f64` from its fixed 8-byte IEEE-754 bit pattern.
    pub fn f64(&mut self) -> Result<f64, CodecError> {
        let bytes = self.take(8)?;
        let arr: [u8; 8] = bytes.try_into().map_err(|_| CodecError::UnexpectedEnd)?;
        Ok(f64::from_bits(u64::from_le_bytes(arr)))
    }

    /// Read a collection length, rejecting anything longer than the bytes
    /// that remain (cheap corruption guard before any allocation).
    // `len` here is a decode operation (it consumes a varint), not a size
    // accessor, so clippy's is_empty pairing doesn't apply.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&mut self) -> Result<usize, CodecError> {
        let raw = self.u64()?;
        let len = usize::try_from(raw).map_err(|_| CodecError::Invalid("length"))?;
        if len > self.remaining() {
            return Err(CodecError::Invalid("length"));
        }
        Ok(len)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, CodecError> {
        let len = self.len()?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::Invalid("utf-8 string"))
    }
}

/// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) lookup tables for
/// slicing-by-8, built at compile time. `CRC_TABLES[0]` is the classic
/// byte-at-a-time table; tables 1..8 advance a byte's contribution by one
/// extra position, letting the hot loop fold eight bytes per step with
/// independent lookups instead of a serial per-byte dependency chain.
const CRC_TABLES: [[u32; 256]; 8] = {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    tables
};

/// CRC-32 checksum of `bytes` (IEEE, as used by gzip/zip — the journal's
/// per-frame integrity check).
pub fn crc32(bytes: &[u8]) -> u32 {
    crc32_finish(crc32_update(crc32_init(), bytes))
}

/// Initial state for a streaming CRC-32 (feed chunks through
/// [`crc32_update`], then [`crc32_finish`]). Streaming lets the writer
/// checksum the frame envelope and payload without concatenating them.
pub const fn crc32_init() -> u32 {
    !0u32
}

/// Fold `bytes` into a streaming CRC-32 state (slicing-by-8: eight bytes per
/// step in the bulk, byte-at-a-time for the tail).
pub fn crc32_update(mut state: u32, bytes: &[u8]) -> u32 {
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        // chunks_exact guarantees 8 bytes; to_le_bytes keeps this
        // endian-independent.
        let mut eight = [0u8; 8];
        eight.copy_from_slice(chunk);
        let lo = u32::from_le_bytes([eight[0], eight[1], eight[2], eight[3]]) ^ state;
        state = CRC_TABLES[7][(lo & 0xFF) as usize]
            ^ CRC_TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[4][(lo >> 24) as usize]
            ^ CRC_TABLES[3][eight[4] as usize]
            ^ CRC_TABLES[2][eight[5] as usize]
            ^ CRC_TABLES[1][eight[6] as usize]
            ^ CRC_TABLES[0][eight[7] as usize];
    }
    for &byte in chunks.remainder() {
        let idx = ((state ^ u32::from(byte)) & 0xFF) as usize;
        state = (state >> 8) ^ CRC_TABLES[0][idx];
    }
    state
}

/// Finalize a streaming CRC-32 state into the checksum.
pub const fn crc32_finish(state: u32) -> u32 {
    !state
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard test vector: CRC-32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn streaming_crc32_matches_one_shot() {
        let bytes = b"the quick brown fox jumps over the lazy dog";
        for split in 0..bytes.len() {
            let state = crc32_update(crc32_init(), &bytes[..split]);
            let state = crc32_update(state, &bytes[split..]);
            assert_eq!(crc32_finish(state), crc32(bytes), "split at {split}");
        }
    }

    #[test]
    fn primitives_round_trip() {
        let mut enc = Encoder::new();
        enc.put_u8(0xAB);
        enc.put_u16(0xBEEF);
        enc.put_u32(0xDEAD_BEEF);
        enc.put_u64(u64::MAX - 7);
        enc.put_u128(u128::MAX / 3);
        enc.put_bool(true);
        enc.put_bool(false);
        enc.put_f64(-0.125);
        enc.put_f64(f64::NAN);
        enc.put_str("journal");
        let bytes = enc.into_bytes();

        let mut dec = Decoder::new(&bytes);
        assert_eq!(dec.u8().unwrap(), 0xAB);
        assert_eq!(dec.u16().unwrap(), 0xBEEF);
        assert_eq!(dec.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(dec.u64().unwrap(), u64::MAX - 7);
        assert_eq!(dec.u128().unwrap(), u128::MAX / 3);
        assert!(dec.bool().unwrap());
        assert!(!dec.bool().unwrap());
        assert_eq!(dec.f64().unwrap(), -0.125);
        assert!(dec.f64().unwrap().is_nan());
        assert_eq!(dec.str().unwrap(), "journal");
        assert!(dec.is_exhausted());
    }

    #[test]
    fn decoder_never_reads_past_end() {
        let mut dec = Decoder::new(&[1, 2, 3]);
        assert_eq!(dec.u32(), Err(CodecError::UnexpectedEnd));
        // A failed read consumes nothing.
        assert_eq!(dec.remaining(), 3);
        assert_eq!(dec.u16().unwrap(), 0x0201);
        assert_eq!(dec.u8().unwrap(), 3);
        assert_eq!(dec.u8(), Err(CodecError::UnexpectedEnd));
    }

    #[test]
    fn length_longer_than_payload_rejected() {
        let mut enc = Encoder::new();
        enc.put_len(1_000_000);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(dec.len(), Err(CodecError::Invalid("length")));
    }

    #[test]
    fn invalid_bool_rejected() {
        let mut dec = Decoder::new(&[7]);
        assert_eq!(dec.bool(), Err(CodecError::Invalid("boolean")));
    }

    #[test]
    fn varint_boundaries_round_trip() {
        for v in [
            0u64,
            1,
            0x7F,
            0x80,
            0x3FFF,
            0x4000,
            u64::from(u32::MAX),
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut enc = Encoder::new();
            enc.put_u64(v);
            let bytes = enc.into_bytes();
            let mut dec = Decoder::new(&bytes);
            assert_eq!(dec.u64().unwrap(), v);
            assert!(dec.is_exhausted());
        }
        for v in [
            0u128,
            0x7F,
            0x80,
            u128::from(u64::MAX),
            u128::MAX - 1,
            u128::MAX,
        ] {
            let mut enc = Encoder::new();
            enc.put_u128(v);
            let bytes = enc.into_bytes();
            let mut dec = Decoder::new(&bytes);
            assert_eq!(dec.u128().unwrap(), v);
            assert!(dec.is_exhausted());
        }
    }

    #[test]
    fn varint_small_values_are_one_byte() {
        let mut enc = Encoder::new();
        enc.put_u64(42);
        enc.put_u128(99);
        assert_eq!(enc.into_bytes().len(), 2);
    }

    #[test]
    fn overlong_varint_rejected() {
        // Eleven continuation groups overflow a u64's 64 bits.
        let mut dec = Decoder::new(&[0x80; 11]);
        assert_eq!(dec.u64(), Err(CodecError::Invalid("varint")));
        // Ten groups whose top group carries bits beyond bit 63 overflow too.
        let mut dec = Decoder::new(&[0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x02]);
        assert_eq!(dec.u64(), Err(CodecError::Invalid("varint")));
        // Twenty continuation groups overflow a u128.
        let mut dec = Decoder::new(&[0x80; 20]);
        assert_eq!(dec.u128(), Err(CodecError::Invalid("varint")));
        // An unterminated varint is an unexpected end.
        let mut dec = Decoder::new(&[0x80, 0x80]);
        assert_eq!(dec.u64(), Err(CodecError::UnexpectedEnd));
    }
}
