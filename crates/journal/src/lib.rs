//! Append-only run journal, deterministic replay, and the concurrent
//! risk-read service.
//!
//! The paper measures liquidation risk from a *recorded* stream of on-chain
//! events; this crate gives the simulator the same production shape:
//!
//! * [`JournalWriter`] — a [`SimObserver`](defi_sim::SimObserver) that
//!   streams every observation (run context, ticks, chain events,
//!   liquidation metadata, volume samples, end state) into a versioned,
//!   CRC-framed binary file ([`frames`] documents the format).
//! * [`JournalReader`] — validates a journal and re-drives any observer with
//!   the recorded stream, reconstructing the `on_run_end` context
//!   (chain archive + oracle history) so the full analytics
//!   `StudyCollector` pipeline runs offline and renders byte-identical
//!   artefacts.
//! * [`RiskService`] — ticks a live [`Session`](defi_sim::Session) and
//!   publishes immutable, epoch-stamped book snapshots that reader threads
//!   query concurrently: point lookups, band listings, and envelope-powered
//!   `breach_under(token, −8 %)` stress queries.
//!
//! Everything is hand-rolled on `std` — no crates.io dependencies — and the
//! reader treats file contents as untrusted input: every failure is a typed
//! [`JournalError`], never a panic.

#![forbid(unsafe_code)]

pub mod codec;
pub mod error;
pub mod frames;
pub mod reader;
pub mod service;
pub mod writer;

pub use codec::{crc32, CodecError, Decoder, Encoder};
pub use error::JournalError;
pub use frames::{EndFrame, Frame, HeaderFrame, LiquidationMetaFrame, TickFrame, MAGIC, VERSION};
pub use reader::JournalReader;
pub use service::{RiskService, ServiceSnapshot, SnapshotHandle};
pub use writer::JournalWriter;
