//! The on-chain price oracle.
//!
//! All protocols in the suite read prices from a [`PriceOracle`]. The oracle
//! keeps the *current* price per token plus the full update history, so the
//! analytics layer can ask "what was the ETH price at block b?" — the same
//! archive query the paper performs to normalise values to USD "according to
//! the prices given by the platforms' on-chain price oracles at the block
//! when the liquidation is settled" (§4.2).
//!
//! Updates follow the Chainlink push model: a new price is only written
//! on-chain when it deviates from the last written price by more than a
//! configurable threshold or when a heartbeat interval elapses. This is what
//! creates *overdue liquidations* when prices gap faster than the oracle
//! updates (§4.4.2).

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

use defi_types::{BlockNumber, Price, Token, Wad};

/// One historical oracle write.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PricePoint {
    /// Block at which the price became visible on-chain.
    pub block: BlockNumber,
    /// The price (USD per token).
    pub price: Price,
}

/// Oracle configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct OracleConfig {
    /// Minimum relative deviation (e.g. 0.005 = 0.5 %) from the last written
    /// price required to push an update outside the heartbeat.
    pub deviation_threshold: f64,
    /// Maximum number of blocks between two writes regardless of deviation.
    pub heartbeat_blocks: u64,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig {
            deviation_threshold: 0.005,
            heartbeat_blocks: 1_440, // ≈ 6 hours
        }
    }
}

impl OracleConfig {
    /// An oracle that writes every observation (used in unit tests and in
    /// the fine-grained post-liquidation price-movement study, Appendix A).
    pub fn every_update() -> Self {
        OracleConfig {
            deviation_threshold: 0.0,
            heartbeat_blocks: 1,
        }
    }
}

/// The price oracle: current prices + full write history per token, plus a
/// monotone *write epoch* so downstream caches (the incremental
/// `PositionBook`s in `defi-lending`) can ask "which tokens changed since I
/// last synced?" instead of re-reading every price.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PriceOracle {
    config: OracleConfig,
    current: HashMap<Token, Price>,
    history: HashMap<Token, Vec<PricePoint>>,
    /// Bumped by one on every on-chain write (any token).
    epoch: u64,
    /// The epoch of each token's most recent write.
    token_epochs: HashMap<Token, u64>,
}

impl PriceOracle {
    /// Create an oracle with the given update policy.
    pub fn new(config: OracleConfig) -> Self {
        PriceOracle {
            config,
            current: HashMap::new(),
            history: HashMap::new(),
            epoch: 0,
            token_epochs: HashMap::new(),
        }
    }

    /// The oracle's update policy.
    pub fn config(&self) -> OracleConfig {
        self.config
    }

    /// The current write epoch: increases by one on every on-chain price
    /// write, for any token. A consumer that remembers the epoch it last
    /// synced at can detect staleness with one integer comparison and recover
    /// the changed tokens via
    /// [`collect_changed_since`](PriceOracle::collect_changed_since).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The epoch of a token's most recent write (0 if never written).
    pub fn token_epoch(&self, token: Token) -> u64 {
        self.token_epochs.get(&token).copied().unwrap_or(0)
    }

    /// Append every token written to strictly after `epoch` onto `out`
    /// (unordered; callers feed the result into order-independent dirty sets).
    pub fn collect_changed_since(&self, epoch: u64, out: &mut Vec<Token>) {
        for (token, written_at) in &self.token_epochs {
            if *written_at > epoch {
                out.push(*token);
            }
        }
    }

    /// Unconditionally write a price (genesis seeding, scripted oracle
    /// irregularities such as the November 2020 Compound DAI incident).
    pub fn set_price(&mut self, block: BlockNumber, token: Token, price: Price) {
        self.epoch += 1;
        self.token_epochs.insert(token, self.epoch);
        self.current.insert(token, price);
        self.history
            .entry(token)
            .or_default()
            .push(PricePoint { block, price });
    }

    /// Offer an observation to the oracle; it is written on-chain only if the
    /// deviation/heartbeat policy says so. Returns `true` when a write
    /// happened.
    pub fn observe(&mut self, block: BlockNumber, token: Token, price: Price) -> bool {
        let should_write = match self.history.get(&token).and_then(|h| h.last()) {
            None => true,
            Some(last) => {
                let elapsed = block.saturating_sub(last.block);
                if elapsed >= self.config.heartbeat_blocks {
                    true
                } else {
                    let old = last.price.to_f64();
                    let new = price.to_f64();
                    if old <= 0.0 {
                        true
                    } else {
                        ((new - old) / old).abs() >= self.config.deviation_threshold
                    }
                }
            }
        };
        if should_write {
            self.set_price(block, token, price);
        }
        should_write
    }

    /// Current on-chain price of a token, if any has ever been written.
    pub fn price(&self, token: Token) -> Option<Price> {
        self.current.get(&token).copied()
    }

    /// Current on-chain price, defaulting to zero when unknown (convenient
    /// for valuation sums where unknown tokens contribute nothing).
    pub fn price_or_zero(&self, token: Token) -> Price {
        self.price(token).unwrap_or(Wad::ZERO)
    }

    /// USD value of `amount` of `token` at the current price.
    pub fn value_of(&self, token: Token, amount: Wad) -> Wad {
        self.price_or_zero(token)
            .checked_mul(amount)
            .unwrap_or(Wad::MAX)
    }

    /// The on-chain price of a token as of `block` (the most recent write at
    /// or before that block).
    pub fn price_at(&self, block: BlockNumber, token: Token) -> Option<Price> {
        let history = self.history.get(&token)?;
        // Binary search for the last write with write.block <= block.
        let idx = history.partition_point(|p| p.block <= block);
        if idx == 0 {
            None
        } else {
            Some(history[idx - 1].price)
        }
    }

    /// Full write history of a token.
    pub fn history(&self, token: Token) -> &[PricePoint] {
        self.history
            .get(&token)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Tokens the oracle currently has a price for.
    pub fn tokens(&self) -> Vec<Token> {
        let mut tokens: Vec<Token> = self.current.keys().copied().collect();
        tokens.sort();
        tokens
    }

    /// Snapshot of all current prices (used by state snapshots for the
    /// sensitivity analysis, Algorithm 1).
    pub fn snapshot(&self) -> HashMap<Token, Price> {
        self.current.clone()
    }

    /// Total number of writes across all tokens (diagnostics, §4.5.2 block
    /// coverage checks).
    pub fn total_writes(&self) -> usize {
        self.history.values().map(|v| v.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn usd(v: f64) -> Wad {
        Wad::from_f64(v)
    }

    #[test]
    fn set_and_get_price() {
        let mut oracle = PriceOracle::new(OracleConfig::default());
        oracle.set_price(10, Token::ETH, usd(3_500.0));
        assert_eq!(oracle.price(Token::ETH), Some(usd(3_500.0)));
        assert_eq!(oracle.price(Token::DAI), None);
        assert_eq!(oracle.price_or_zero(Token::DAI), Wad::ZERO);
    }

    #[test]
    fn value_of_uses_current_price() {
        let mut oracle = PriceOracle::new(OracleConfig::default());
        oracle.set_price(1, Token::ETH, usd(3_300.0));
        let value = oracle.value_of(Token::ETH, Wad::from_int(3));
        assert_eq!(value, usd(9_900.0));
    }

    #[test]
    fn observe_respects_deviation_threshold() {
        let mut oracle = PriceOracle::new(OracleConfig {
            deviation_threshold: 0.01,
            heartbeat_blocks: 10_000,
        });
        assert!(
            oracle.observe(1, Token::ETH, usd(100.0)),
            "first observation always writes"
        );
        assert!(
            !oracle.observe(2, Token::ETH, usd(100.5)),
            "0.5% move below threshold"
        );
        assert!(
            oracle.observe(3, Token::ETH, usd(102.0)),
            "2% move above threshold"
        );
        assert_eq!(oracle.history(Token::ETH).len(), 2);
    }

    #[test]
    fn observe_respects_heartbeat() {
        let mut oracle = PriceOracle::new(OracleConfig {
            deviation_threshold: 0.5,
            heartbeat_blocks: 100,
        });
        assert!(oracle.observe(1, Token::ETH, usd(100.0)));
        assert!(!oracle.observe(50, Token::ETH, usd(100.1)));
        assert!(
            oracle.observe(101, Token::ETH, usd(100.1)),
            "heartbeat forces a write"
        );
    }

    #[test]
    fn price_at_returns_historical_values() {
        let mut oracle = PriceOracle::new(OracleConfig::every_update());
        oracle.set_price(10, Token::ETH, usd(100.0));
        oracle.set_price(20, Token::ETH, usd(150.0));
        oracle.set_price(30, Token::ETH, usd(120.0));
        assert_eq!(oracle.price_at(5, Token::ETH), None);
        assert_eq!(oracle.price_at(10, Token::ETH), Some(usd(100.0)));
        assert_eq!(oracle.price_at(25, Token::ETH), Some(usd(150.0)));
        assert_eq!(oracle.price_at(1_000, Token::ETH), Some(usd(120.0)));
    }

    #[test]
    fn epoch_tracks_writes_per_token() {
        let mut oracle = PriceOracle::new(OracleConfig {
            deviation_threshold: 0.01,
            heartbeat_blocks: 10_000,
        });
        assert_eq!(oracle.epoch(), 0);
        oracle.set_price(1, Token::ETH, usd(100.0));
        oracle.set_price(1, Token::DAI, usd(1.0));
        assert_eq!(oracle.epoch(), 2);
        assert_eq!(oracle.token_epoch(Token::ETH), 1);
        assert_eq!(oracle.token_epoch(Token::DAI), 2);
        assert_eq!(oracle.token_epoch(Token::USDC), 0);

        // A rejected observation does not advance the epoch…
        assert!(!oracle.observe(2, Token::ETH, usd(100.2)));
        assert_eq!(oracle.epoch(), 2);
        // …a written one does, and only its token moves.
        assert!(oracle.observe(3, Token::ETH, usd(105.0)));
        assert_eq!(oracle.epoch(), 3);

        let mut changed = Vec::new();
        oracle.collect_changed_since(2, &mut changed);
        assert_eq!(changed, vec![Token::ETH]);
        changed.clear();
        oracle.collect_changed_since(0, &mut changed);
        changed.sort();
        assert_eq!(changed, vec![Token::ETH, Token::DAI]);
        changed.clear();
        oracle.collect_changed_since(3, &mut changed);
        assert!(changed.is_empty());
    }

    #[test]
    fn snapshot_and_tokens() {
        let mut oracle = PriceOracle::new(OracleConfig::default());
        oracle.set_price(1, Token::ETH, usd(100.0));
        oracle.set_price(1, Token::DAI, usd(1.0));
        let snap = oracle.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(oracle.tokens(), vec![Token::ETH, Token::DAI]);
        assert_eq!(oracle.total_writes(), 2);
    }
}
