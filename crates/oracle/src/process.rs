//! Stochastic price processes.
//!
//! Each token's USD price evolves under one of three regimes:
//!
//! * **GBM** (geometric Brownian motion) — the default for volatile crypto
//!   assets; drift and volatility are quoted per year and scaled to the tick
//!   length in blocks.
//! * **Jump-diffusion** — GBM plus Poisson-arriving jumps, used when a
//!   scenario wants fat tails without scripting every episode.
//! * **Peg** — an Ornstein–Uhlenbeck-style mean reversion around 1 USD for
//!   stablecoins, with occasional deviation episodes (the paper measures DAI
//!   trading up to 11.1 % away from USDC, §4.5.2).
//!
//! On top of the stochastic component, [`ScheduledShock`]s apply scripted
//! relative price moves at specific blocks — this is how the 13 March 2020
//! −43 % ETH crash and the November 2020 Compound DAI oracle irregularity are
//! reproduced deterministically.

use rand::rngs::StdRng;
use rand::Rng;
use rand_distr::{Distribution, Normal, Poisson};
use serde::{Deserialize, Serialize};

use defi_types::BlockNumber;

/// Blocks per year under the ~13.5 s block time of the study window; used to
/// scale annualised drift/volatility to per-tick quantities.
pub const BLOCKS_PER_YEAR: f64 = 2_336_000.0;

/// Geometric Brownian motion parameters (annualised).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct GbmParams {
    /// Annualised drift (e.g. 1.5 = +150 %/year — crypto bull market).
    pub drift: f64,
    /// Annualised volatility (e.g. 0.9 = 90 %).
    pub volatility: f64,
}

impl GbmParams {
    /// Typical large-cap crypto asset during the study window.
    pub fn crypto_default() -> Self {
        GbmParams {
            drift: 1.10,
            volatility: 0.95,
        }
    }

    /// A calmer large-cap (BTC-like) profile.
    pub fn bluechip() -> Self {
        GbmParams {
            drift: 0.95,
            volatility: 0.75,
        }
    }
}

/// Jump component parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct JumpParams {
    /// Expected number of jumps per year.
    pub intensity: f64,
    /// Mean of the jump size (log-return), typically negative (crashes).
    pub mean: f64,
    /// Standard deviation of the jump size.
    pub std_dev: f64,
}

/// Stablecoin peg parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PegParams {
    /// Target price (1.0 for USD-pegged coins).
    pub target: f64,
    /// Mean-reversion speed per tick fraction of a year (higher = tighter peg).
    pub reversion: f64,
    /// Per-tick noise standard deviation (absolute USD).
    pub noise: f64,
    /// Maximum absolute deviation the process will allow (safety clamp).
    pub max_deviation: f64,
}

impl PegParams {
    /// A well-collateralised stablecoin (USDC/USDT-like, ±0.5 %).
    pub fn tight() -> Self {
        PegParams {
            target: 1.0,
            reversion: 0.15,
            noise: 0.001,
            max_deviation: 0.02,
        }
    }

    /// A looser, loan-backed stablecoin (DAI-like, occasionally several %).
    pub fn loose() -> Self {
        PegParams {
            target: 1.0,
            reversion: 0.05,
            noise: 0.003,
            max_deviation: 0.12,
        }
    }
}

/// A scripted relative price move applied at a specific block.
///
/// `magnitude` is the relative change: `-0.43` reproduces the 13 March 2020
/// ETH crash, `+0.30` the irregular DAI price spike on Compound's oracle.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ScheduledShock {
    /// Block at which the shock applies (the first tick at or after it).
    pub block: BlockNumber,
    /// Relative price change, e.g. `-0.43` for a 43 % decline.
    pub magnitude: f64,
    /// If true the shock decays back towards the pre-shock trend over
    /// `recovery_blocks`; if false it is permanent (a level shift).
    pub transient: bool,
    /// Number of blocks over which a transient shock decays.
    pub recovery_blocks: u64,
}

impl ScheduledShock {
    /// A permanent level shift.
    pub fn permanent(block: BlockNumber, magnitude: f64) -> Self {
        ScheduledShock {
            block,
            magnitude,
            transient: false,
            recovery_blocks: 0,
        }
    }

    /// A transient shock that decays over `recovery_blocks`.
    pub fn transient(block: BlockNumber, magnitude: f64, recovery_blocks: u64) -> Self {
        ScheduledShock {
            block,
            magnitude,
            transient: true,
            recovery_blocks,
        }
    }
}

/// The price dynamics of one token.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum PriceProcess {
    /// Geometric Brownian motion.
    Gbm(GbmParams),
    /// GBM plus Poisson jumps.
    JumpDiffusion {
        /// Diffusive component.
        gbm: GbmParams,
        /// Jump component.
        jumps: JumpParams,
    },
    /// Mean-reverting stablecoin peg.
    Peg(PegParams),
    /// Price never moves (useful in unit tests and controlled experiments).
    Constant,
}

impl PriceProcess {
    /// Evolve a price over `dt_blocks` blocks starting from `price`,
    /// *excluding* scripted shocks (the [`super::scenario::MarketScenario`]
    /// applies those on top).
    pub fn step(&self, price: f64, dt_blocks: u64, rng: &mut StdRng) -> f64 {
        let dt = dt_blocks as f64 / BLOCKS_PER_YEAR;
        match self {
            PriceProcess::Constant => price,
            PriceProcess::Gbm(p) => gbm_step(price, p, dt, rng),
            PriceProcess::JumpDiffusion { gbm, jumps } => {
                let mut next = gbm_step(price, gbm, dt, rng);
                let expected_jumps = jumps.intensity * dt;
                if expected_jumps > 0.0 {
                    let n = Poisson::new(expected_jumps.max(1e-12))
                        .map(|p| p.sample(rng) as u64)
                        .unwrap_or(0);
                    for _ in 0..n {
                        let size = Normal::new(jumps.mean, jumps.std_dev)
                            .map(|d| d.sample(rng))
                            .unwrap_or(0.0);
                        next *= size.exp();
                    }
                }
                next.max(1e-12)
            }
            PriceProcess::Peg(p) => {
                let noise: f64 = Normal::new(0.0, p.noise)
                    .map(|d| d.sample(rng))
                    .unwrap_or(0.0);
                // Scale reversion with the tick length so longer ticks revert more.
                let pull = (p.reversion * dt_blocks as f64 / 1_000.0).min(1.0);
                let next = price + pull * (p.target - price) + noise;
                next.clamp(p.target - p.max_deviation, p.target + p.max_deviation)
            }
        }
    }
}

fn gbm_step(price: f64, params: &GbmParams, dt: f64, rng: &mut StdRng) -> f64 {
    if dt <= 0.0 {
        return price;
    }
    let z: f64 = Normal::new(0.0, 1.0).map(|d| d.sample(rng)).unwrap_or(0.0);
    let drift_term = (params.drift - 0.5 * params.volatility * params.volatility) * dt;
    let diffusion = params.volatility * dt.sqrt() * z;
    (price * (drift_term + diffusion).exp()).max(1e-12)
}

/// Deterministic multiplicative factor contributed by a set of shocks at a
/// given block (1.0 = no effect). Transient shocks decay exponentially back
/// to 1 over their recovery window.
pub fn shock_factor(
    shocks: &[ScheduledShock],
    previous_block: BlockNumber,
    block: BlockNumber,
) -> f64 {
    let mut factor = 1.0;
    for shock in shocks {
        if shock.block > previous_block && shock.block <= block {
            // Shock fires on this tick.
            factor *= 1.0 + shock.magnitude;
        } else if shock.transient && block > shock.block {
            // Recovery phase: undo a slice of the shock proportional to the
            // fraction of the recovery window this tick covers.
            let since = block - shock.block;
            if since <= shock.recovery_blocks && shock.recovery_blocks > 0 {
                let span = (block - previous_block.max(shock.block)) as f64;
                let per_block_recovery =
                    (1.0 / (1.0 + shock.magnitude)).powf(1.0 / shock.recovery_blocks as f64);
                factor *= per_block_recovery.powf(span);
            }
        }
    }
    factor
}

/// Convenience helper used in tests and agents: sample a uniform value in
/// `[low, high)` from the scenario RNG.
pub fn uniform(rng: &mut StdRng, low: f64, high: f64) -> f64 {
    if high <= low {
        return low;
    }
    rng.gen_range(low..high)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn constant_process_never_moves() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(PriceProcess::Constant.step(123.0, 1000, &mut rng), 123.0);
    }

    #[test]
    fn gbm_stays_positive_and_is_deterministic() {
        let p = PriceProcess::Gbm(GbmParams::crypto_default());
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut price_a = 170.0;
        let mut price_b = 170.0;
        for _ in 0..1_000 {
            price_a = p.step(price_a, 100, &mut a);
            price_b = p.step(price_b, 100, &mut b);
            assert!(price_a > 0.0);
        }
        assert_eq!(price_a, price_b);
    }

    #[test]
    fn gbm_drift_moves_mean_upwards() {
        let p = PriceProcess::Gbm(GbmParams {
            drift: 2.0,
            volatility: 0.3,
        });
        let mut total = 0.0;
        for seed in 0..50 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut price = 100.0;
            // One year of 10k-block ticks.
            for _ in 0..((BLOCKS_PER_YEAR / 10_000.0) as usize) {
                price = p.step(price, 10_000, &mut rng);
            }
            total += price;
        }
        let mean = total / 50.0;
        assert!(
            mean > 300.0,
            "drift of +200%/y should lift the mean price, got {mean}"
        );
    }

    #[test]
    fn peg_process_stays_near_target() {
        let p = PriceProcess::Peg(PegParams::tight());
        let mut rng = StdRng::seed_from_u64(3);
        let mut price = 1.0;
        for _ in 0..10_000 {
            price = p.step(price, 40, &mut rng);
            assert!((price - 1.0).abs() <= 0.02 + 1e-9);
        }
    }

    #[test]
    fn loose_peg_allows_larger_deviation_than_tight() {
        let tight = PriceProcess::Peg(PegParams::tight());
        let loose = PriceProcess::Peg(PegParams::loose());
        let mut rng_t = StdRng::seed_from_u64(11);
        let mut rng_l = StdRng::seed_from_u64(11);
        let (mut p_t, mut p_l) = (1.0, 1.0);
        let (mut max_t, mut max_l) = (0.0f64, 0.0f64);
        for _ in 0..20_000 {
            p_t = tight.step(p_t, 40, &mut rng_t);
            p_l = loose.step(p_l, 40, &mut rng_l);
            max_t = max_t.max((p_t - 1.0).abs());
            max_l = max_l.max((p_l - 1.0).abs());
        }
        assert!(max_l > max_t);
    }

    #[test]
    fn shock_fires_once_between_ticks() {
        let shocks = vec![ScheduledShock::permanent(100, -0.43)];
        assert!((shock_factor(&shocks, 90, 99) - 1.0).abs() < 1e-12);
        assert!((shock_factor(&shocks, 99, 101) - 0.57).abs() < 1e-12);
        // Already applied; does not fire again.
        assert!((shock_factor(&shocks, 101, 110) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn transient_shock_recovers() {
        let shocks = vec![ScheduledShock::transient(100, -0.40, 1_000)];
        // Apply the shock.
        let hit = shock_factor(&shocks, 99, 100);
        assert!((hit - 0.60).abs() < 1e-12);
        // Accumulate recovery over the window.
        let mut level = 0.60;
        let mut prev = 100;
        for block in (200..=1_100).step_by(100) {
            level *= shock_factor(&shocks, prev, block);
            prev = block;
        }
        assert!(
            (level - 1.0).abs() < 0.05,
            "should recover close to 1.0, got {level}"
        );
    }

    #[test]
    fn jump_diffusion_produces_fat_tails() {
        let jd = PriceProcess::JumpDiffusion {
            gbm: GbmParams {
                drift: 0.0,
                volatility: 0.2,
            },
            jumps: JumpParams {
                intensity: 12.0,
                mean: -0.25,
                std_dev: 0.1,
            },
        };
        let gbm = PriceProcess::Gbm(GbmParams {
            drift: 0.0,
            volatility: 0.2,
        });
        let mut big_moves_jd = 0;
        let mut big_moves_gbm = 0;
        for seed in 0..200 {
            let mut rng = StdRng::seed_from_u64(seed);
            let next = jd.step(100.0, 200_000, &mut rng);
            if (next / 100.0 - 1.0).abs() > 0.25 {
                big_moves_jd += 1;
            }
            let mut rng = StdRng::seed_from_u64(seed);
            let next = gbm.step(100.0, 200_000, &mut rng);
            if (next / 100.0 - 1.0).abs() > 0.25 {
                big_moves_gbm += 1;
            }
        }
        assert!(big_moves_jd > big_moves_gbm);
    }
}
