//! Market scenarios: the scripted price environment of the two-year study.
//!
//! A [`MarketScenario`] owns one price process per token plus the scripted
//! historical episodes the paper's measurements hinge on:
//!
//! * **13 March 2020** — ETH (and most collateral assets) drop ~43 % within a
//!   day; the network congests; MakerDAO keeper bots fail (§4.3.1, Figure 5).
//! * **26 November 2020** — the Compound price oracle reports an irregular
//!   DAI price, triggering ~89 M USD of liquidations (§4.2, Figure 5). This
//!   is modelled as a *platform-specific* oracle irregularity, not a market
//!   move.
//! * **February 2021** — sharp volatility produces the largest liquidation
//!   day in history up to that point (§4.2).
//!
//! The scenario produces "true" market prices; each platform's
//! [`PriceOracle`](crate::PriceOracle) then observes them under its own
//! update policy, and scripted [`ScenarioEvent`]s can override a single
//! platform's oracle to reproduce oracle-specific incidents.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use defi_types::{BlockNumber, Platform, Price, Token, Wad};

use crate::process::{shock_factor, GbmParams, PegParams, PriceProcess, ScheduledShock};

/// Price dynamics specification for one token.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TokenPathSpec {
    /// The token.
    pub token: Token,
    /// Initial USD price at the scenario start block.
    pub initial_price: f64,
    /// Stochastic component.
    pub process: PriceProcess,
    /// Scripted shocks layered on top of the stochastic component.
    pub shocks: Vec<ScheduledShock>,
}

impl TokenPathSpec {
    /// A spec with no shocks.
    pub fn new(token: Token, initial_price: f64, process: PriceProcess) -> Self {
        TokenPathSpec {
            token,
            initial_price,
            process,
            shocks: Vec::new(),
        }
    }

    /// Add a scripted shock.
    pub fn with_shock(mut self, shock: ScheduledShock) -> Self {
        self.shocks.push(shock);
        self
    }
}

/// Scripted events that are not market-wide price moves.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub enum ScenarioEvent {
    /// A single platform's oracle reports a wrong price for a token
    /// (the November 2020 Compound DAI incident).
    OracleIrregularity {
        /// Block at which the irregular price is pushed.
        block: BlockNumber,
        /// Affected platform.
        platform: Platform,
        /// Affected token.
        token: Token,
        /// The irregular price, as a multiple of the true market price
        /// (1.30 reproduces DAI quoted ~30 % above peg).
        price_multiplier: f64,
        /// Number of blocks after which the platform oracle reverts to
        /// tracking the market.
        duration_blocks: u64,
    },
}

impl ScenarioEvent {
    /// Block at which the event starts.
    pub fn block(&self) -> BlockNumber {
        match self {
            ScenarioEvent::OracleIrregularity { block, .. } => *block,
        }
    }
}

/// Endogenous price-impact feedback: how strongly liquidation sell-pressure
/// routed through the AMM feeds back into the scenario's "true" market price.
///
/// With feedback enabled, the simulation engine sells seized collateral
/// through the DEX every tick and reports the realised pool price impact via
/// [`MarketScenario::apply_sell_pressure`]; the depressed price becomes the
/// starting point of the next tick's stochastic step. This is the
/// toxic-liquidation-spiral dynamic (Warmuz et al., 2022): liquidations deepen
/// the decline that caused them, triggering further liquidations.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SellPressureFeedback {
    /// Fraction of the AMM pool price impact passed through to the market
    /// price (1.0 = the market marks straight to the pool).
    pub passthrough: f64,
    /// Cap on the relative market-price decline a single tick's sell pressure
    /// may cause (guards against degenerate one-tick collapses).
    pub max_tick_impact: f64,
}

impl Default for SellPressureFeedback {
    fn default() -> Self {
        SellPressureFeedback {
            passthrough: 0.8,
            max_tick_impact: 0.25,
        }
    }
}

/// The market scenario: per-token price paths plus scripted events.
#[derive(Debug, Clone)]
pub struct MarketScenario {
    specs: BTreeMap<Token, TokenPathSpec>,
    events: Vec<ScenarioEvent>,
    rng: StdRng,
    current: BTreeMap<Token, f64>,
    last_block: BlockNumber,
    start_block: BlockNumber,
    feedback: Option<SellPressureFeedback>,
}

impl MarketScenario {
    /// An empty scenario starting at `start_block`.
    pub fn new(seed: u64, start_block: BlockNumber) -> Self {
        MarketScenario {
            specs: BTreeMap::new(),
            events: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
            current: BTreeMap::new(),
            last_block: start_block,
            start_block,
            feedback: None,
        }
    }

    /// Register a token path.
    pub fn with_token(mut self, spec: TokenPathSpec) -> Self {
        self.current.insert(spec.token, spec.initial_price);
        self.specs.insert(spec.token, spec);
        self
    }

    /// Register a scripted event.
    pub fn with_event(mut self, event: ScenarioEvent) -> Self {
        self.events.push(event);
        self
    }

    /// Layer an extra scripted shock onto an already-registered token's path
    /// (catalog scenarios deepen or add episodes on top of the paper market).
    /// No-op when the token is not registered.
    pub fn with_shock_on(mut self, token: Token, shock: ScheduledShock) -> Self {
        if let Some(spec) = self.specs.get_mut(&token) {
            spec.shocks.push(shock);
        }
        self
    }

    /// Enable endogenous sell-pressure feedback (the liquidation-spiral
    /// dynamic). With feedback on, the engine routes liquidation proceeds
    /// through the DEX and reports the pool impact back via
    /// [`apply_sell_pressure`](MarketScenario::apply_sell_pressure).
    pub fn with_sell_pressure_feedback(mut self, feedback: SellPressureFeedback) -> Self {
        self.feedback = Some(feedback);
        self
    }

    /// The feedback parameters, when the spiral dynamic is enabled.
    pub fn feedback(&self) -> Option<SellPressureFeedback> {
        self.feedback
    }

    /// Depress a token's market price by the realised AMM sell impact
    /// (`impact` is the relative pool price impact, 0–1). The decline is
    /// scaled by the feedback's passthrough and capped per tick; the next
    /// [`advance`](MarketScenario::advance) steps from the depressed level,
    /// which is what makes liquidation sell-pressure feed the next round of
    /// liquidations. No-op when feedback is disabled.
    pub fn apply_sell_pressure(&mut self, token: Token, impact: f64) {
        let Some(feedback) = self.feedback else {
            return;
        };
        if !impact.is_finite() || impact <= 0.0 {
            return;
        }
        let decline = (impact * feedback.passthrough).min(feedback.max_tick_impact.max(0.0));
        if let Some(price) = self.current.get_mut(&token) {
            *price = (*price * (1.0 - decline)).max(1e-12);
        }
    }

    /// Tokens covered by the scenario.
    pub fn tokens(&self) -> Vec<Token> {
        self.specs.keys().copied().collect()
    }

    /// Scenario start block.
    pub fn start_block(&self) -> BlockNumber {
        self.start_block
    }

    /// Current (true) market price of a token.
    pub fn price(&self, token: Token) -> Option<Price> {
        self.current.get(&token).map(|p| Wad::from_f64(*p))
    }

    /// Current (true) market price as `f64` (agent decision logic).
    pub fn price_f64(&self, token: Token) -> Option<f64> {
        self.current.get(&token).copied()
    }

    /// Advance the market to `block`, returning the new price of every token.
    pub fn advance(&mut self, block: BlockNumber) -> Vec<(Token, Price)> {
        let dt = block.saturating_sub(self.last_block);
        let mut out = Vec::with_capacity(self.specs.len());
        for (token, spec) in &self.specs {
            let price = self.current.get_mut(token).expect("registered token");
            let mut next = if dt > 0 {
                spec.process.step(*price, dt, &mut self.rng)
            } else {
                *price
            };
            next *= shock_factor(&spec.shocks, self.last_block, block);
            *price = next.max(1e-12);
            out.push((*token, Wad::from_f64(*price)));
        }
        self.last_block = block;
        out
    }

    /// Scripted events starting in `(prev_block, block]`.
    pub fn events_between(
        &self,
        prev_block: BlockNumber,
        block: BlockNumber,
    ) -> Vec<ScenarioEvent> {
        self.events
            .iter()
            .copied()
            .filter(|e| e.block() > prev_block && e.block() <= block)
            .collect()
    }

    /// All scripted events.
    pub fn events(&self) -> &[ScenarioEvent] {
        &self.events
    }

    /// The scripted market of the paper's study window (April 2019 – April
    /// 2021). Blocks follow mainnet numbering; see
    /// [`TimeMap::paper_study_window`](defi_types::TimeMap::paper_study_window).
    pub fn paper_two_year(seed: u64) -> Self {
        let start = 7_500_000;
        // Blocks are placed so the linear TimeMap of the suite maps them to
        // the paper's calendar dates: 13 March 2020 → block ≈ 9,712,000,
        // 26 Nov 2020 → ≈ 11,333,000, 22 Feb 2021 → ≈ 11,910,000.
        let march_crash = 9_712_000;
        let nov_incident = 11_333_000;
        let feb_volatility = 11_910_000;

        let eth = TokenPathSpec::new(
            Token::ETH,
            170.0,
            PriceProcess::Gbm(GbmParams {
                drift: 1.55,
                volatility: 0.85,
            }),
        )
        .with_shock(ScheduledShock::transient(march_crash, -0.43, 400_000))
        .with_shock(ScheduledShock::transient(feb_volatility, -0.25, 200_000));

        let wbtc = TokenPathSpec::new(
            Token::WBTC,
            5_300.0,
            PriceProcess::Gbm(GbmParams::bluechip()),
        )
        .with_shock(ScheduledShock::transient(march_crash, -0.39, 400_000))
        .with_shock(ScheduledShock::transient(feb_volatility, -0.20, 200_000));

        let alt = |token: Token, initial: f64| {
            TokenPathSpec::new(
                token,
                initial,
                PriceProcess::Gbm(GbmParams::crypto_default()),
            )
            .with_shock(ScheduledShock::transient(march_crash, -0.50, 400_000))
            .with_shock(ScheduledShock::transient(feb_volatility, -0.30, 200_000))
        };

        let stable_tight =
            |token: Token| TokenPathSpec::new(token, 1.0, PriceProcess::Peg(PegParams::tight()));

        // DAI trades above peg during the March 2020 deleveraging (borrowers
        // scrambling for DAI to repay CDPs) — a documented episode.
        let dai =
            TokenPathSpec::new(Token::DAI, 1.0, PriceProcess::Peg(PegParams::loose())).with_shock(
                ScheduledShock::transient(march_crash + 10_000, 0.04, 300_000),
            );

        MarketScenario::new(seed, start)
            .with_token(eth)
            .with_token(wbtc)
            .with_token(dai)
            .with_token(stable_tight(Token::USDC))
            .with_token(stable_tight(Token::USDT))
            .with_token(stable_tight(Token::TUSD))
            .with_token(alt(Token::BAT, 0.35))
            .with_token(alt(Token::ZRX, 0.30))
            .with_token(alt(Token::UNI, 3.0))
            .with_token(alt(Token::LINK, 1.8))
            .with_token(alt(Token::MKR, 550.0))
            .with_token(alt(Token::COMP, 90.0))
            .with_token(alt(Token::AAVE, 40.0))
            .with_token(alt(Token::YFI, 10_000.0))
            .with_token(alt(Token::SNX, 0.9))
            .with_token(alt(Token::KNC, 0.25))
            .with_token(alt(Token::MANA, 0.05))
            .with_token(alt(Token::REP, 16.0))
            .with_event(ScenarioEvent::OracleIrregularity {
                block: nov_incident,
                platform: Platform::Compound,
                token: Token::DAI,
                price_multiplier: 1.30,
                duration_blocks: 600,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advance_moves_all_registered_tokens() {
        let mut scenario = MarketScenario::paper_two_year(1);
        let tokens = scenario.tokens();
        assert!(tokens.len() >= 15);
        let updates = scenario.advance(7_600_000);
        assert_eq!(updates.len(), tokens.len());
        for (_, price) in updates {
            assert!(!price.is_zero());
        }
    }

    #[test]
    fn march_crash_hits_eth() {
        let mut scenario = MarketScenario::paper_two_year(2);
        scenario.advance(9_702_000);
        let before = scenario.price_f64(Token::ETH).unwrap();
        scenario.advance(9_717_000);
        let after = scenario.price_f64(Token::ETH).unwrap();
        // The scripted −43 % shock dominates whatever the GBM does in 15k blocks.
        assert!(
            after < before * 0.70,
            "ETH should crash ≥30% across the March 2020 shock: before {before}, after {after}"
        );
    }

    #[test]
    fn stablecoins_stay_near_peg() {
        let mut scenario = MarketScenario::paper_two_year(3);
        let mut max_dev: f64 = 0.0;
        for block in (7_500_000u64..9_500_000).step_by(50_000) {
            scenario.advance(block);
            let p = scenario.price_f64(Token::USDC).unwrap();
            max_dev = max_dev.max((p - 1.0).abs());
        }
        assert!(max_dev < 0.05, "USDC deviated {max_dev} from peg");
    }

    #[test]
    fn compound_dai_irregularity_is_scheduled() {
        let scenario = MarketScenario::paper_two_year(4);
        let events = scenario.events_between(11_300_000, 11_340_000);
        assert_eq!(events.len(), 1);
        match events[0] {
            ScenarioEvent::OracleIrregularity {
                platform,
                token,
                price_multiplier,
                ..
            } => {
                assert_eq!(platform, Platform::Compound);
                assert_eq!(token, Token::DAI);
                assert!(price_multiplier > 1.2);
            }
        }
        // Outside the window nothing fires.
        assert!(scenario.events_between(7_500_000, 9_000_000).is_empty());
    }

    #[test]
    fn sell_pressure_depresses_the_next_tick() {
        let base = MarketScenario::paper_two_year(5);
        let mut fed = base
            .clone()
            .with_sell_pressure_feedback(SellPressureFeedback {
                passthrough: 1.0,
                max_tick_impact: 0.5,
            });
        let mut dry = base;
        dry.advance(7_600_000);
        fed.advance(7_600_000);
        assert_eq!(dry.price_f64(Token::ETH), fed.price_f64(Token::ETH));
        fed.apply_sell_pressure(Token::ETH, 0.10);
        // Same RNG stream: the fed path is exactly the dry path scaled down.
        dry.advance(7_700_000);
        fed.advance(7_700_000);
        let dry_eth = dry.price_f64(Token::ETH).unwrap();
        let fed_eth = fed.price_f64(Token::ETH).unwrap();
        assert!(
            (fed_eth / dry_eth - 0.90).abs() < 1e-9,
            "expected a 10% haircut to persist multiplicatively: {fed_eth} vs {dry_eth}"
        );
    }

    #[test]
    fn sell_pressure_is_capped_and_gated() {
        let mut scenario = MarketScenario::paper_two_year(6);
        let before = scenario.price_f64(Token::ETH).unwrap();
        // Feedback disabled: no-op.
        scenario.apply_sell_pressure(Token::ETH, 0.5);
        assert_eq!(scenario.price_f64(Token::ETH).unwrap(), before);
        let mut scenario = scenario.with_sell_pressure_feedback(SellPressureFeedback::default());
        // A pathological 100% impact is capped at max_tick_impact.
        scenario.apply_sell_pressure(Token::ETH, 1.0);
        let after = scenario.price_f64(Token::ETH).unwrap();
        let cap = SellPressureFeedback::default().max_tick_impact;
        assert!((after / before - (1.0 - cap)).abs() < 1e-9);
        // Non-finite and non-positive impacts are ignored.
        scenario.apply_sell_pressure(Token::ETH, f64::NAN);
        scenario.apply_sell_pressure(Token::ETH, -0.3);
        assert_eq!(scenario.price_f64(Token::ETH).unwrap(), after);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = MarketScenario::paper_two_year(9);
        let mut b = MarketScenario::paper_two_year(9);
        for block in (7_500_000u64..8_000_000).step_by(100_000) {
            assert_eq!(a.advance(block), b.advance(block));
        }
    }

    #[test]
    fn eth_generally_appreciates_over_the_window() {
        // The study window ends with ETH far above its April 2019 level; the
        // drift parameter should reproduce that in aggregate across seeds
        // (single paths are noisy with 85 % annualised volatility).
        let mut total = 0.0;
        let mut higher = 0;
        for seed in 0..10 {
            let mut scenario = MarketScenario::paper_two_year(seed);
            for block in (7_500_000u64..=12_344_944).step_by(200_000) {
                scenario.advance(block);
            }
            let final_price = scenario.price_f64(Token::ETH).unwrap();
            total += final_price;
            if final_price > 400.0 {
                higher += 1;
            }
        }
        assert!(
            higher >= 6,
            "ETH ended above 400 USD in only {higher}/10 seeds"
        );
        assert!(
            total / 10.0 > 500.0,
            "mean final ETH price too low: {}",
            total / 10.0
        );
    }
}
