//! # defi-oracle
//!
//! Price oracles and the synthetic price processes that stand in for the two
//! years of mainnet price history the paper measures against.
//!
//! The lending protocols in the study learn prices from oracles: Aave and
//! Compound use Chainlink-style push oracles, MakerDAO its own medianizer,
//! and on-chain AMM spot prices also exist (and are known to be manipulable,
//! §2.2.1). Liquidations are triggered exclusively by oracle prices, so the
//! *shape* of the price paths is what drives every phenomenon measured in the
//! paper: the March 2020 crash, the November 2020 Compound DAI irregularity,
//! stablecoin peg deviations, and the sensitivity of each protocol to ETH
//! declines.
//!
//! * [`process`] — stochastic building blocks: geometric Brownian motion,
//!   jump-diffusion, mean-reverting stablecoin pegs, and piecewise scripted
//!   shocks.
//! * [`oracle`] — the [`PriceOracle`]: current prices, full update history,
//!   `price_at(block)` archival queries, and deviation-threshold push
//!   updates like Chainlink's.
//! * [`scenario`] — the [`MarketScenario`] used by the two-year study: per
//!   token processes plus the scripted historical episodes.

#![forbid(unsafe_code)]

pub mod oracle;
pub mod process;
pub mod scenario;

pub use oracle::{OracleConfig, PriceOracle, PricePoint};
pub use process::{GbmParams, JumpParams, PegParams, PriceProcess, ScheduledShock};
pub use scenario::{MarketScenario, ScenarioEvent, SellPressureFeedback, TokenPathSpec};
