//! Shared error type for arithmetic and domain violations in the value layer.

use core::fmt;

/// Errors produced by the fixed-point arithmetic and type conversions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TypeError {
    /// An addition, subtraction or multiplication overflowed the 128-bit
    /// (or intermediate 256-bit) representation.
    Overflow,
    /// A subtraction would have produced a negative unsigned value.
    Underflow,
    /// Division by zero.
    DivisionByZero,
    /// A string could not be parsed into the requested type.
    Parse(&'static str),
    /// A token symbol was not found in the registry.
    UnknownToken,
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::Overflow => write!(f, "fixed-point arithmetic overflow"),
            TypeError::Underflow => write!(f, "fixed-point arithmetic underflow"),
            TypeError::DivisionByZero => write!(f, "division by zero"),
            TypeError::Parse(what) => write!(f, "failed to parse {what}"),
            TypeError::UnknownToken => write!(f, "unknown token symbol"),
        }
    }
}

impl std::error::Error for TypeError {}
