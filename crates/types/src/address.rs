//! Account/contract addresses and transaction hashes.
//!
//! The measurement pipeline identifies liquidators by their unique Ethereum
//! address (§4.3.1 of the paper: "we assume that each unique Ethereum address
//! represents one liquidator"), so addresses are first-class values here.

use core::fmt;
use core::str::FromStr;
use serde::{Deserialize, Serialize};

use crate::error::TypeError;

/// A 20-byte account or contract address.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Address(pub [u8; 20]);

impl Address {
    /// The zero address, used as a sentinel for "no address" / burn.
    pub const ZERO: Address = Address([0u8; 20]);

    /// Deterministically derive an address from a numeric seed. The suite
    /// uses this to give simulated agents and contracts stable, readable
    /// identities without needing a keccak implementation.
    pub fn from_seed(seed: u64) -> Address {
        let mut bytes = [0u8; 20];
        // Simple splitmix64-based expansion: decorrelates consecutive seeds
        // so that address prefixes look uniformly distributed.
        let mut x = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        for chunk in bytes.chunks_mut(8) {
            x = splitmix64(x);
            let le = x.to_le_bytes();
            for (dst, src) in chunk.iter_mut().zip(le.iter()) {
                *dst = *src;
            }
        }
        Address(bytes)
    }

    /// Derive a "contract" address from a human-readable label. Stable across
    /// runs, so scenario configs can refer to well-known contracts by name.
    pub fn from_label(label: &str) -> Address {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Address::from_seed(h)
    }

    /// Whether this is the zero address.
    pub fn is_zero(&self) -> bool {
        self.0 == [0u8; 20]
    }

    /// Short display form (`0x1234…abcd`) used in reports.
    pub fn short(&self) -> String {
        let full = self.to_string();
        format!("{}…{}", &full[..6], &full[full.len() - 4..])
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x")?;
        for b in &self.0 {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

impl FromStr for Address {
    type Err = TypeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.strip_prefix("0x").unwrap_or(s);
        if s.len() != 40 {
            return Err(TypeError::Parse("Address: expected 40 hex chars"));
        }
        let mut bytes = [0u8; 20];
        for (i, byte) in bytes.iter_mut().enumerate() {
            *byte = u8::from_str_radix(&s[2 * i..2 * i + 2], 16)
                .map_err(|_| TypeError::Parse("Address: invalid hex"))?;
        }
        Ok(Address(bytes))
    }
}

/// A 32-byte transaction hash.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct TxHash(pub [u8; 32]);

impl TxHash {
    /// Deterministically derive a hash from components (block, index, nonce).
    /// Not cryptographic; only needs to be unique within a simulation run.
    pub fn derive(block: u64, index: u64, salt: u64) -> TxHash {
        let mut bytes = [0u8; 32];
        let mut x = block
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(index)
            .rotate_left(17)
            .wrapping_add(salt);
        for chunk in bytes.chunks_mut(8) {
            x = splitmix64(x);
            chunk.copy_from_slice(&x.to_le_bytes());
        }
        TxHash(bytes)
    }
}

impl fmt::Display for TxHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x")?;
        for b in &self.0 {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_addresses_are_stable_and_distinct() {
        let a = Address::from_seed(1);
        let b = Address::from_seed(2);
        assert_eq!(a, Address::from_seed(1));
        assert_ne!(a, b);
        assert!(!a.is_zero());
    }

    #[test]
    fn label_addresses_are_stable() {
        assert_eq!(
            Address::from_label("aave-v2"),
            Address::from_label("aave-v2")
        );
        assert_ne!(
            Address::from_label("aave-v2"),
            Address::from_label("compound")
        );
    }

    #[test]
    fn display_and_parse_roundtrip() {
        let a = Address::from_seed(42);
        let s = a.to_string();
        assert!(s.starts_with("0x"));
        assert_eq!(s.len(), 42);
        assert_eq!(Address::from_str(&s).unwrap(), a);
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(Address::from_str("0x1234").is_err());
        assert!(Address::from_str(&"zz".repeat(20)).is_err());
    }

    #[test]
    fn short_form() {
        let a = Address::ZERO;
        assert_eq!(a.short(), "0x0000…0000");
    }

    #[test]
    fn tx_hash_unique_per_index() {
        assert_ne!(TxHash::derive(1, 0, 0), TxHash::derive(1, 1, 0));
        assert_eq!(TxHash::derive(5, 3, 9), TxHash::derive(5, 3, 9));
        assert_eq!(TxHash::derive(1, 0, 0).to_string().len(), 66);
    }
}
