//! Block-number ⇄ timestamp ⇄ calendar mapping.
//!
//! The paper reports results on two axes: block numbers (with approximate
//! dates, e.g. "block 12344944 (30th Apr 2021)") and calendar months
//! (Figures 5 and 9, Table 8). The [`TimeMap`] provides a deterministic
//! linear mapping between the two, using a configurable average block time,
//! plus civil-calendar conversion so aggregation by `YYYY-MM` matches the
//! paper's monthly buckets without pulling in a date-time crate.

use core::fmt;
use serde::{Deserialize, Serialize};

/// A block height.
pub type BlockNumber = u64;

/// A Unix timestamp in seconds.
pub type Timestamp = u64;

/// A calendar month tag, e.g. `2020-03`, used for monthly aggregation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MonthTag {
    /// Calendar year (e.g. 2020).
    pub year: u32,
    /// Calendar month, 1-based (1 = January).
    pub month: u8,
}

impl MonthTag {
    /// Construct a month tag, clamping the month into `1..=12`.
    pub fn new(year: u32, month: u8) -> Self {
        MonthTag {
            year,
            month: month.clamp(1, 12),
        }
    }

    /// The month immediately after this one.
    pub fn next(self) -> MonthTag {
        if self.month == 12 {
            MonthTag::new(self.year + 1, 1)
        } else {
            MonthTag::new(self.year, self.month + 1)
        }
    }

    /// Number of months since year 0 (for ordering and distance computations).
    pub fn index(self) -> u32 {
        self.year * 12 + (self.month as u32 - 1)
    }

    /// Inclusive iterator over months from `self` to `end`.
    pub fn range_inclusive(self, end: MonthTag) -> Vec<MonthTag> {
        let mut months = Vec::new();
        let mut current = self;
        while current <= end {
            months.push(current);
            current = current.next();
        }
        months
    }
}

impl fmt::Display for MonthTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}", self.year, self.month)
    }
}

/// Convert a days-since-Unix-epoch count to a civil (year, month, day).
///
/// Implements Howard Hinnant's `civil_from_days` algorithm, which is exact
/// over the entire proleptic Gregorian calendar.
fn civil_from_days(days: i64) -> (i64, u32, u32) {
    let z = days + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = (z - era * 146_097) as u64; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe as i64 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// Mapping between block numbers, timestamps and calendar dates.
///
/// Defaults mirror the paper's study window: Ethereum block 7,500,000
/// (≈ 1 April 2019) to block 12,344,944 (30 April 2021), with an average
/// block time chosen so the two endpoints line up (~13.45 s).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TimeMap {
    /// Block number at which the mapping is anchored.
    pub genesis_block: BlockNumber,
    /// Unix timestamp of `genesis_block`.
    pub genesis_timestamp: Timestamp,
    /// Average seconds per block used for the linear mapping.
    pub seconds_per_block: f64,
}

impl TimeMap {
    /// The paper's study window: anchor block 7,500,000 at 2019-04-01 00:00 UTC,
    /// with a block time calibrated so block 12,344,944 lands on 2021-04-30.
    pub fn paper_study_window() -> Self {
        // 2019-04-01T00:00:00Z
        let genesis_timestamp: Timestamp = 1_554_076_800;
        // 2021-04-30T00:00:00Z = 1_619_740_800; span 65_664_000 s over 4_844_944 blocks.
        let seconds_per_block = 65_664_000.0 / (12_344_944.0 - 7_500_000.0);
        TimeMap {
            genesis_block: 7_500_000,
            genesis_timestamp,
            seconds_per_block,
        }
    }

    /// A simple mapping anchored at block 0 with a constant block time.
    pub fn from_block_zero(genesis_timestamp: Timestamp, seconds_per_block: f64) -> Self {
        TimeMap {
            genesis_block: 0,
            genesis_timestamp,
            seconds_per_block,
        }
    }

    /// Timestamp of a block.
    pub fn timestamp(&self, block: BlockNumber) -> Timestamp {
        let delta_blocks = block.saturating_sub(self.genesis_block) as f64;
        self.genesis_timestamp + (delta_blocks * self.seconds_per_block) as u64
    }

    /// Block number closest to a timestamp (clamped to the genesis block).
    pub fn block_at(&self, timestamp: Timestamp) -> BlockNumber {
        if timestamp <= self.genesis_timestamp {
            return self.genesis_block;
        }
        let delta = (timestamp - self.genesis_timestamp) as f64 / self.seconds_per_block;
        self.genesis_block + delta as u64
    }

    /// Calendar date (year, month, day) of a block.
    pub fn date(&self, block: BlockNumber) -> (u32, u8, u8) {
        let ts = self.timestamp(block);
        let days = (ts / 86_400) as i64;
        let (y, m, d) = civil_from_days(days);
        (y as u32, m as u8, d as u8)
    }

    /// Month tag of a block, for monthly aggregation.
    pub fn month(&self, block: BlockNumber) -> MonthTag {
        let (y, m, _) = self.date(block);
        MonthTag::new(y, m)
    }

    /// Number of blocks corresponding to a duration in hours.
    pub fn blocks_per_hours(&self, hours: f64) -> u64 {
        (hours * 3_600.0 / self.seconds_per_block) as u64
    }

    /// Duration in hours between two blocks.
    pub fn hours_between(&self, from: BlockNumber, to: BlockNumber) -> f64 {
        let from_ts = self.timestamp(from);
        let to_ts = self.timestamp(to);
        (to_ts.saturating_sub(from_ts)) as f64 / 3_600.0
    }

    /// First block whose timestamp falls in the given month.
    pub fn first_block_of_month(&self, tag: MonthTag) -> BlockNumber {
        // Binary search over the linear mapping.
        let mut lo = self.genesis_block;
        let mut hi = self.genesis_block + 40_000_000;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.month(mid) < tag {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }
}

impl Default for TimeMap {
    fn default() -> Self {
        TimeMap::paper_study_window()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn civil_from_days_known_dates() {
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(civil_from_days(18_321), (2020, 2, 29)); // leap day
        assert_eq!(civil_from_days(18_322), (2020, 3, 1)); // 2020-03-01
        assert_eq!(civil_from_days(-1), (1969, 12, 31));
    }

    #[test]
    fn paper_window_endpoints() {
        let map = TimeMap::paper_study_window();
        let (y0, m0, _) = map.date(7_500_000);
        assert_eq!((y0, m0), (2019, 4));
        let (y1, m1, d1) = map.date(12_344_944);
        assert_eq!((y1, m1), (2021, 4));
        assert!(
            d1 >= 29,
            "end block should land at the end of April 2021, got day {d1}"
        );
    }

    #[test]
    fn paper_window_matches_figure_axis() {
        // Figure 4's x-axis annotates block 10,000,000 as 2020-05-04 and
        // 11,000,000 as 2020-10-06. Real mainnet block times were not
        // constant, so a linear map can only land within a couple of weeks of
        // those annotations — which is sufficient for monthly aggregation.
        let map = TimeMap::paper_study_window();
        let (y, m, _) = map.date(10_000_000);
        assert_eq!(y, 2020);
        assert!(
            m == 4 || m == 5,
            "block 10M should map near May 2020, got month {m}"
        );
        let (y, m, _) = map.date(11_000_000);
        assert_eq!(y, 2020);
        assert!(
            (9..=10).contains(&m),
            "block 11M should map near Oct 2020, got month {m}"
        );
    }

    #[test]
    fn month_tag_ordering_and_range() {
        let a = MonthTag::new(2019, 11);
        let b = MonthTag::new(2020, 2);
        assert!(a < b);
        let range = a.range_inclusive(b);
        assert_eq!(range.len(), 4);
        assert_eq!(range[0].to_string(), "2019-11");
        assert_eq!(range[3].to_string(), "2020-02");
    }

    #[test]
    fn block_timestamp_roundtrip() {
        let map = TimeMap::paper_study_window();
        let block = 9_000_000;
        let ts = map.timestamp(block);
        let back = map.block_at(ts);
        assert!(back.abs_diff(block) <= 1);
    }

    #[test]
    fn first_block_of_month_is_monotone() {
        let map = TimeMap::paper_study_window();
        let b1 = map.first_block_of_month(MonthTag::new(2020, 3));
        let b2 = map.first_block_of_month(MonthTag::new(2020, 4));
        assert!(b1 < b2);
        assert_eq!(map.month(b1), MonthTag::new(2020, 3));
        assert_eq!(map.month(b1 - 1), MonthTag::new(2020, 2));
    }

    #[test]
    fn hours_between_blocks() {
        let map = TimeMap::from_block_zero(0, 15.0);
        assert!((map.hours_between(0, 240) - 1.0).abs() < 1e-9);
        assert_eq!(map.blocks_per_hours(6.0), 1440);
    }
}
