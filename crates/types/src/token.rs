//! The token universe of the paper's evaluation and a small asset registry.
//!
//! Figure 8 of the paper enumerates the collateral assets listed on each
//! platform (Aave V2, Compound, dYdX, MakerDAO) at the snapshot block. We
//! model every symbol that appears there, plus the stablecoins studied in
//! §4.5.2, so the sensitivity and stablecoin experiments can use the same
//! asset population.

use core::fmt;
use core::str::FromStr;
use serde::{Deserialize, Serialize};

use crate::error::TypeError;
use crate::fixed::Wad;

/// A token recognised by the suite.
///
/// `Token` is a closed enum rather than an interned string so protocol code
/// can match on it exhaustively (e.g. the dYdX markets only list ETH, USDC,
/// DAI) and so it stays `Copy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(non_camel_case_types)]
pub enum Token {
    /// Native ether (modelled identically to WETH throughout).
    ETH,
    /// Wrapped ether.
    WETH,
    /// Wrapped bitcoin.
    WBTC,
    /// MakerDAO's stablecoin.
    DAI,
    /// Circle's USD stablecoin.
    USDC,
    /// Tether.
    USDT,
    /// TrueUSD.
    TUSD,
    /// Paxos standard.
    PAX,
    /// Gemini dollar.
    GUSD,
    /// Basic attention token.
    BAT,
    /// 0x protocol token.
    ZRX,
    /// Uniswap governance token.
    UNI,
    /// Chainlink token.
    LINK,
    /// Maker governance token.
    MKR,
    /// Compound governance token.
    COMP,
    /// Aave governance token.
    AAVE,
    /// yearn.finance token.
    YFI,
    /// Synthetix network token.
    SNX,
    /// Republic protocol token.
    REN,
    /// Kyber network crystal.
    KNC,
    /// Decentraland token.
    MANA,
    /// Enjin coin.
    ENJ,
    /// Curve DAO token.
    CRV,
    /// Balancer token.
    BAL,
    /// Staked SushiSwap token.
    xSUSHI,
    /// Augur reputation token.
    REP,
    /// Loopring token.
    LRC,
    /// Wrapped/renVM bitcoin.
    renBTC,
    /// Uniswap V2 DAI/ETH LP share (MakerDAO collateral type).
    UNIV2DAIETH,
    /// Uniswap V2 WBTC/ETH LP share (MakerDAO collateral type).
    UNIV2WBTCETH,
    /// Uniswap V2 USDC/ETH LP share (MakerDAO collateral type).
    UNIV2USDCETH,
}

impl Token {
    /// All tokens known to the suite, in a stable order.
    pub const ALL: [Token; 31] = [
        Token::ETH,
        Token::WETH,
        Token::WBTC,
        Token::DAI,
        Token::USDC,
        Token::USDT,
        Token::TUSD,
        Token::PAX,
        Token::GUSD,
        Token::BAT,
        Token::ZRX,
        Token::UNI,
        Token::LINK,
        Token::MKR,
        Token::COMP,
        Token::AAVE,
        Token::YFI,
        Token::SNX,
        Token::REN,
        Token::KNC,
        Token::MANA,
        Token::ENJ,
        Token::CRV,
        Token::BAL,
        Token::xSUSHI,
        Token::REP,
        Token::LRC,
        Token::renBTC,
        Token::UNIV2DAIETH,
        Token::UNIV2WBTCETH,
        Token::UNIV2USDCETH,
    ];

    /// The ticker symbol as used in the paper's figures.
    pub fn symbol(self) -> &'static str {
        match self {
            Token::ETH => "ETH",
            Token::WETH => "WETH",
            Token::WBTC => "WBTC",
            Token::DAI => "DAI",
            Token::USDC => "USDC",
            Token::USDT => "USDT",
            Token::TUSD => "TUSD",
            Token::PAX => "PAX",
            Token::GUSD => "GUSD",
            Token::BAT => "BAT",
            Token::ZRX => "ZRX",
            Token::UNI => "UNI",
            Token::LINK => "LINK",
            Token::MKR => "MKR",
            Token::COMP => "COMP",
            Token::AAVE => "AAVE",
            Token::YFI => "YFI",
            Token::SNX => "SNX",
            Token::REN => "REN",
            Token::KNC => "KNC",
            Token::MANA => "MANA",
            Token::ENJ => "ENJ",
            Token::CRV => "CRV",
            Token::BAL => "BAL",
            Token::xSUSHI => "xSUSHI",
            Token::REP => "REP",
            Token::LRC => "LRC",
            Token::renBTC => "renBTC",
            Token::UNIV2DAIETH => "UNIV2DAIETH",
            Token::UNIV2WBTCETH => "UNIV2WBTCETH",
            Token::UNIV2USDCETH => "UNIV2USDCETH",
        }
    }

    /// ERC-20 decimals of the canonical mainnet deployment. The simulator
    /// keeps all balances in 18-decimal [`Wad`]s, but decimals are preserved
    /// so displayed amounts can mirror on-chain conventions.
    pub fn decimals(self) -> u8 {
        match self {
            Token::USDC | Token::USDT => 6,
            Token::WBTC | Token::renBTC => 8,
            Token::GUSD => 2,
            _ => 18,
        }
    }

    /// Whether the token is one of the USD-pegged stablecoins studied in
    /// §4.5.2 of the paper.
    pub fn is_stablecoin(self) -> bool {
        matches!(
            self,
            Token::DAI | Token::USDC | Token::USDT | Token::TUSD | Token::PAX | Token::GUSD
        )
    }

    /// Whether the token is an ETH flavour (ETH/WETH are treated as the same
    /// market for the DAI/ETH comparison in §5.1).
    pub fn is_eth(self) -> bool {
        matches!(self, Token::ETH | Token::WETH)
    }

    /// Reference USD price at the start of the study window (April 2019-ish
    /// levels), used as the initial value of the simulated price processes.
    pub fn reference_price(self) -> Wad {
        let usd = |v: f64| Wad::from_f64(v);
        match self {
            Token::ETH | Token::WETH => usd(170.0),
            Token::WBTC | Token::renBTC => usd(5_300.0),
            Token::DAI | Token::USDC | Token::USDT | Token::TUSD | Token::PAX | Token::GUSD => {
                usd(1.0)
            }
            Token::BAT => usd(0.35),
            Token::ZRX => usd(0.30),
            Token::UNI => usd(3.0),
            Token::LINK => usd(1.8),
            Token::MKR => usd(550.0),
            Token::COMP => usd(90.0),
            Token::AAVE => usd(40.0),
            Token::YFI => usd(10_000.0),
            Token::SNX => usd(0.9),
            Token::REN => usd(0.08),
            Token::KNC => usd(0.25),
            Token::MANA => usd(0.05),
            Token::ENJ => usd(0.12),
            Token::CRV => usd(0.8),
            Token::BAL => usd(12.0),
            Token::xSUSHI => usd(1.2),
            Token::REP => usd(16.0),
            Token::LRC => usd(0.06),
            Token::UNIV2DAIETH => usd(45.0),
            Token::UNIV2WBTCETH => usd(450_000_000.0),
            Token::UNIV2USDCETH => usd(65_000_000.0),
        }
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

impl FromStr for Token {
    type Err = TypeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Token::ALL
            .iter()
            .copied()
            .find(|t| t.symbol().eq_ignore_ascii_case(s))
            .ok_or(TypeError::UnknownToken)
    }
}

/// An amount of a specific token (18-decimal normalised units).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TokenAmount {
    /// The token.
    pub token: Token,
    /// The amount in 18-decimal units regardless of the token's on-chain decimals.
    pub amount: Wad,
}

impl TokenAmount {
    /// Construct a new amount.
    pub fn new(token: Token, amount: Wad) -> Self {
        TokenAmount { token, amount }
    }

    /// A zero amount of the given token.
    pub fn zero(token: Token) -> Self {
        TokenAmount {
            token,
            amount: Wad::ZERO,
        }
    }

    /// USD value of this amount at the given price.
    pub fn value_at(&self, price: Wad) -> Wad {
        self.amount.checked_mul(price).unwrap_or(Wad::MAX)
    }
}

impl fmt::Display for TokenAmount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.amount, self.token)
    }
}

/// Static metadata about a token tracked by the [`TokenRegistry`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TokenInfo {
    /// The token.
    pub token: Token,
    /// Ticker symbol.
    pub symbol: String,
    /// On-chain decimals.
    pub decimals: u8,
    /// Whether the token is a USD stablecoin.
    pub stablecoin: bool,
    /// Reference price at the study start.
    pub reference_price: Wad,
}

/// Registry of the tokens active in a simulation. Protocols consult it when
/// listing markets; the analytics layer uses it to iterate the asset universe.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TokenRegistry {
    tokens: Vec<TokenInfo>,
}

impl TokenRegistry {
    /// A registry containing every token the suite knows about.
    pub fn full() -> Self {
        let tokens = Token::ALL
            .iter()
            .map(|&token| TokenInfo {
                token,
                symbol: token.symbol().to_string(),
                decimals: token.decimals(),
                stablecoin: token.is_stablecoin(),
                reference_price: token.reference_price(),
            })
            .collect();
        TokenRegistry { tokens }
    }

    /// A registry restricted to the given tokens.
    pub fn with_tokens(tokens: &[Token]) -> Self {
        let tokens = tokens
            .iter()
            .map(|&token| TokenInfo {
                token,
                symbol: token.symbol().to_string(),
                decimals: token.decimals(),
                stablecoin: token.is_stablecoin(),
                reference_price: token.reference_price(),
            })
            .collect();
        TokenRegistry { tokens }
    }

    /// Iterate over the registered tokens.
    pub fn iter(&self) -> impl Iterator<Item = &TokenInfo> {
        self.tokens.iter()
    }

    /// Number of registered tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Whether a token is registered.
    pub fn contains(&self, token: Token) -> bool {
        self.tokens.iter().any(|t| t.token == token)
    }

    /// Look up a token's metadata.
    pub fn info(&self, token: Token) -> Option<&TokenInfo> {
        self.tokens.iter().find(|t| t.token == token)
    }

    /// The stablecoins in the registry.
    pub fn stablecoins(&self) -> Vec<Token> {
        self.tokens
            .iter()
            .filter(|t| t.stablecoin)
            .map(|t| t.token)
            .collect()
    }
}

impl Default for TokenRegistry {
    fn default() -> Self {
        TokenRegistry::full()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_symbols_roundtrip() {
        for token in Token::ALL {
            assert_eq!(Token::from_str(token.symbol()).unwrap(), token);
        }
    }

    #[test]
    fn unknown_symbol_rejected() {
        assert_eq!(Token::from_str("DOGE"), Err(TypeError::UnknownToken));
    }

    #[test]
    fn stablecoin_classification() {
        assert!(Token::DAI.is_stablecoin());
        assert!(Token::USDC.is_stablecoin());
        assert!(!Token::ETH.is_stablecoin());
        assert!(!Token::WBTC.is_stablecoin());
    }

    #[test]
    fn eth_flavours() {
        assert!(Token::ETH.is_eth());
        assert!(Token::WETH.is_eth());
        assert!(!Token::WBTC.is_eth());
    }

    #[test]
    fn registry_full_has_all_tokens() {
        let reg = TokenRegistry::full();
        assert_eq!(reg.len(), Token::ALL.len());
        for token in Token::ALL {
            assert!(reg.contains(token));
            assert_eq!(reg.info(token).unwrap().symbol, token.symbol());
        }
    }

    #[test]
    fn registry_subset() {
        let reg = TokenRegistry::with_tokens(&[Token::ETH, Token::DAI]);
        assert_eq!(reg.len(), 2);
        assert!(reg.contains(Token::ETH));
        assert!(!reg.contains(Token::WBTC));
        assert_eq!(reg.stablecoins(), vec![Token::DAI]);
    }

    #[test]
    fn token_amount_value() {
        let amt = TokenAmount::new(Token::ETH, Wad::from_int(3));
        assert_eq!(amt.value_at(Wad::from_int(3500)), Wad::from_int(10_500));
        assert_eq!(format!("{amt}"), "3 ETH");
    }

    #[test]
    fn reference_prices_positive() {
        for token in Token::ALL {
            assert!(!token.reference_price().is_zero(), "{token} has zero price");
        }
    }
}
