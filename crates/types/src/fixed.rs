//! Fixed-point arithmetic in the style of the Ethereum DeFi contracts the
//! paper studies.
//!
//! * [`Wad`] — unsigned, 18 decimal places. Used for token amounts, USD
//!   values, prices, ratios (health factor, collateralization ratio), and
//!   protocol parameters (liquidation threshold, spread, close factor).
//! * [`Ray`] — unsigned, 27 decimal places. Used for interest-rate indexes,
//!   where the extra precision matters when compounding per block.
//! * [`SignedWad`] — signed companion of [`Wad`], used for profit-and-loss
//!   accounting (the paper reports losses for 641 MakerDAO auctions, so PnL
//!   must be signed).
//!
//! Multiplication and division route through a minimal internal 256-bit
//! intermediate so that `a * b / WAD` never overflows for any representable
//! operands, exactly like `mulDiv` in Solidity math libraries.

use crate::error::TypeError;
use core::cmp::Ordering;
use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};
use core::str::FromStr;
use serde::{Deserialize, Serialize};

/// Scaling factor of a [`Wad`]: 10^18.
pub const WAD: u128 = 1_000_000_000_000_000_000;
/// Scaling factor of a [`Ray`]: 10^27.
pub const RAY: u128 = 1_000_000_000_000_000_000_000_000_000;

// ---------------------------------------------------------------------------
// 256-bit intermediate
// ---------------------------------------------------------------------------

/// A minimal unsigned 256-bit integer used only as an intermediate for
/// full-width `u128 × u128` products and their division by a `u128`.
///
/// This is intentionally not a general-purpose big integer: it supports
/// exactly the operations required by `mul_div`, which keeps it easy to audit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct U256 {
    /// Low 128 bits.
    pub lo: u128,
    /// High 128 bits.
    pub hi: u128,
}

impl U256 {
    /// Full-width product of two `u128` values.
    pub(crate) fn full_mul(a: u128, b: u128) -> U256 {
        const MASK: u128 = u64::MAX as u128;
        let (a_lo, a_hi) = (a & MASK, a >> 64);
        let (b_lo, b_hi) = (b & MASK, b >> 64);

        let ll = a_lo * b_lo;
        let lh = a_lo * b_hi;
        let hl = a_hi * b_lo;
        let hh = a_hi * b_hi;

        // Sum the cross terms into the middle 128 bits, tracking carries.
        let mid = (ll >> 64) + (lh & MASK) + (hl & MASK);
        let lo = (ll & MASK) | (mid << 64);
        let hi = hh + (lh >> 64) + (hl >> 64) + (mid >> 64);
        U256 { lo, hi }
    }

    /// Divide by a `u128` divisor, returning quotient and remainder if the
    /// quotient fits in 128 bits.
    ///
    /// This is the innermost loop of every fixed-point multiply/divide in the
    /// suite (valuations, interest indexes, claim rules), so it uses Knuth's
    /// Algorithm D over 64-bit limbs — a handful of hardware divisions —
    /// rather than bitwise long division. A reference bitwise implementation
    /// is kept under test and the two are property-checked against each
    /// other.
    pub(crate) fn div_rem_u128(self, divisor: u128) -> Result<(u128, u128), TypeError> {
        if divisor == 0 {
            return Err(TypeError::DivisionByZero);
        }
        if self.hi == 0 {
            return Ok((self.lo / divisor, self.lo % divisor));
        }
        // If hi >= divisor the quotient needs more than 128 bits.
        if self.hi >= divisor {
            return Err(TypeError::Overflow);
        }
        const MASK: u128 = u64::MAX as u128;
        if divisor <= MASK {
            // Single-limb divisor: schoolbook with native 128/64 divisions.
            // hi < divisor < 2^64 keeps every partial quotient in one limb.
            let d = divisor;
            let mut rem = self.hi; // < 2^64
            let mut quotient: u128 = 0;
            for limb in [(self.lo >> 64) & MASK, self.lo & MASK] {
                let cur = (rem << 64) | limb;
                quotient = (quotient << 64) | (cur / d);
                rem = cur % d;
            }
            return Ok((quotient, rem));
        }

        // Two-limb divisor (Knuth D, base 2^64). Normalize so the divisor's
        // top bit is set; hi < divisor guarantees the quotient fits 128 bits.
        let s = divisor.leading_zeros(); // < 64 since divisor > 2^64 - 1
        let dn = divisor << s;
        let d1 = (dn >> 64) as u64;
        let d0 = (dn & MASK) as u64;
        // Dividend shifted left by s into five limbs u[4]..u[0].
        let (lo_s, hi_s, overflow) = if s == 0 {
            (self.lo, self.hi, 0u64)
        } else {
            (
                self.lo << s,
                (self.hi << s) | (self.lo >> (128 - s)),
                (self.hi >> (128 - s)) as u64,
            )
        };
        let mut u = [
            (lo_s & MASK) as u64,
            ((lo_s >> 64) & MASK) as u64,
            (hi_s & MASK) as u64,
            ((hi_s >> 64) & MASK) as u64,
            overflow,
        ];
        let mut quotient: u128 = 0;
        for j in (0..=2).rev() {
            // Estimate the next quotient limb from the top two remainder
            // limbs against d1, then correct it with the d0 test.
            let top = ((u[j + 2] as u128) << 64) | (u[j + 1] as u128);
            let mut qhat = top / (d1 as u128);
            let mut rhat = top % (d1 as u128);
            while qhat > MASK || qhat * (d0 as u128) > ((rhat << 64) | (u[j] as u128)) {
                qhat -= 1;
                rhat += d1 as u128;
                if rhat > MASK {
                    break;
                }
            }
            // Multiply-and-subtract qhat × dn from u[j..j+3].
            let mut borrow: i128 = 0;
            let mut carry: u128 = 0;
            for (i, &d_limb) in [d0, d1].iter().enumerate() {
                let product = qhat * (d_limb as u128) + carry;
                carry = product >> 64;
                let sub = (u[j + i] as i128) - ((product & MASK) as i128) + borrow;
                u[j + i] = sub as u64;
                borrow = sub >> 64;
            }
            let sub = (u[j + 2] as i128) - (carry as i128) + borrow;
            u[j + 2] = sub as u64;
            if sub < 0 {
                // Estimate was one too large: add the divisor back.
                qhat -= 1;
                let mut carry: u128 = 0;
                for (i, &d_limb) in [d0, d1].iter().enumerate() {
                    let sum = (u[j + i] as u128) + (d_limb as u128) + carry;
                    u[j + i] = sum as u64;
                    carry = sum >> 64;
                }
                u[j + 2] = (u[j + 2] as u128 + carry) as u64;
            }
            debug_assert!(j == 2 || qhat <= MASK);
            if j < 2 {
                quotient |= qhat << (64 * j);
            } else {
                debug_assert_eq!(qhat, 0, "quotient exceeds 128 bits");
            }
        }
        let rem = (((u[1] as u128) << 64) | (u[0] as u128)) >> s;
        Ok((quotient, rem))
    }

    pub(crate) fn div_u128(self, divisor: u128) -> Result<u128, TypeError> {
        self.div_rem_u128(divisor).map(|(q, _)| q)
    }

    /// Reference bitwise long division, kept to property-check the Knuth-D
    /// fast path against.
    #[cfg(test)]
    pub(crate) fn div_rem_u128_reference(self, divisor: u128) -> Result<(u128, u128), TypeError> {
        if divisor == 0 {
            return Err(TypeError::DivisionByZero);
        }
        if self.hi == 0 {
            return Ok((self.lo / divisor, self.lo % divisor));
        }
        if self.hi >= divisor {
            return Err(TypeError::Overflow);
        }
        let mut rem = self.hi;
        let mut quotient: u128 = 0;
        for i in (0..128).rev() {
            let top_bit_set = rem >> 127 == 1;
            rem = (rem << 1) | ((self.lo >> i) & 1);
            quotient <<= 1;
            if top_bit_set || rem >= divisor {
                rem = rem.wrapping_sub(divisor);
                quotient |= 1;
            }
        }
        Ok((quotient, rem))
    }

    pub(crate) fn is_zero(self) -> bool {
        self.lo == 0 && self.hi == 0
    }
}

/// `a * b / denominator` with a full 256-bit intermediate, truncating.
pub(crate) fn mul_div(a: u128, b: u128, denominator: u128) -> Result<u128, TypeError> {
    let prod = U256::full_mul(a, b);
    if prod.is_zero() {
        return Ok(0);
    }
    prod.div_u128(denominator)
}

/// `⌊a * b / denominator⌋` with a full 256-bit intermediate.
///
/// The public truncating counterpart of [`mul_div_ceil`]. Conservative bound
/// derivations (the health-factor band envelopes in `defi-lending`) need the
/// rounding direction to be explicit: a price band `[p − ⌊p·s⌋, p + ⌊p·s⌋]`
/// is always a *subset* of the real-valued band `[p(1−s), p(1+s)]`, so
/// integer rounding can only narrow a certified envelope, never widen it.
pub fn mul_div_floor(a: u128, b: u128, denominator: u128) -> Result<u128, TypeError> {
    mul_div(a, b, denominator)
}

/// `⌈a * b / denominator⌉` with a full 256-bit intermediate.
///
/// The exact ceiling counterpart of the truncating `mulDiv` the fixed-point
/// operators use. Liquidation-threshold indexes need it to turn a strict
/// "value < required" comparison into an exact critical price: with
/// `crit = ⌈required × WAD / amount⌉`, a position is below the threshold
/// *iff* the raw oracle price is strictly less than `crit`.
pub fn mul_div_ceil(a: u128, b: u128, denominator: u128) -> Result<u128, TypeError> {
    let prod = U256::full_mul(a, b);
    if prod.is_zero() {
        if denominator == 0 {
            return Err(TypeError::DivisionByZero);
        }
        return Ok(0);
    }
    let (quotient, remainder) = prod.div_rem_u128(denominator)?;
    if remainder == 0 {
        Ok(quotient)
    } else {
        quotient.checked_add(1).ok_or(TypeError::Overflow)
    }
}

// ---------------------------------------------------------------------------
// Wad
// ---------------------------------------------------------------------------

/// Unsigned fixed-point number with 18 decimal places.
///
/// `Wad::from_int(3)` is `3.0`; `Wad::from_raw(WAD / 2)` is `0.5`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Wad(pub u128);

impl Wad {
    /// Zero.
    pub const ZERO: Wad = Wad(0);
    /// One (10^18 raw).
    pub const ONE: Wad = Wad(WAD);
    /// Maximum representable value.
    pub const MAX: Wad = Wad(u128::MAX);

    /// Construct from a raw 18-decimal integer representation.
    pub const fn from_raw(raw: u128) -> Self {
        Wad(raw)
    }

    /// Construct from an integer number of whole units.
    pub const fn from_int(value: u64) -> Self {
        Wad(value as u128 * WAD)
    }

    /// Construct from a ratio of two integers, e.g. `Wad::from_ratio(1, 2)` is 0.5.
    pub fn from_ratio(numerator: u128, denominator: u128) -> Self {
        Wad(mul_div(numerator, WAD, denominator).expect("ratio overflow"))
    }

    /// Construct from an `f64`. Only intended for configuration and test
    /// convenience — negative and non-finite inputs saturate to zero.
    pub fn from_f64(value: f64) -> Self {
        if !value.is_finite() || value <= 0.0 {
            return Wad::ZERO;
        }
        // Split to keep precision for large magnitudes.
        let int_part = value.trunc();
        let frac_part = value - int_part;
        let int_raw = (int_part as u128).saturating_mul(WAD);
        let frac_raw = (frac_part * WAD as f64) as u128;
        Wad(int_raw.saturating_add(frac_raw))
    }

    /// Convert to `f64` (used by the analytics layer for reporting only).
    pub fn to_f64(self) -> f64 {
        self.0 as f64 / WAD as f64
    }

    /// Raw 18-decimal representation.
    pub const fn raw(self) -> u128 {
        self.0
    }

    /// Whether the value is exactly zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Checked addition.
    pub fn checked_add(self, rhs: Wad) -> Result<Wad, TypeError> {
        self.0
            .checked_add(rhs.0)
            .map(Wad)
            .ok_or(TypeError::Overflow)
    }

    /// Checked subtraction.
    pub fn checked_sub(self, rhs: Wad) -> Result<Wad, TypeError> {
        self.0
            .checked_sub(rhs.0)
            .map(Wad)
            .ok_or(TypeError::Underflow)
    }

    /// Saturating subtraction (clamps at zero).
    pub fn saturating_sub(self, rhs: Wad) -> Wad {
        Wad(self.0.saturating_sub(rhs.0))
    }

    /// Saturating addition (clamps at `u128::MAX`).
    pub fn saturating_add(self, rhs: Wad) -> Wad {
        Wad(self.0.saturating_add(rhs.0))
    }

    /// Fixed-point multiplication: `self * rhs / 1e18`, truncating.
    pub fn checked_mul(self, rhs: Wad) -> Result<Wad, TypeError> {
        mul_div(self.0, rhs.0, WAD).map(Wad)
    }

    /// Fixed-point division: `self * 1e18 / rhs`, truncating.
    pub fn checked_div(self, rhs: Wad) -> Result<Wad, TypeError> {
        if rhs.0 == 0 {
            return Err(TypeError::DivisionByZero);
        }
        mul_div(self.0, WAD, rhs.0).map(Wad)
    }

    /// Multiply by an integer.
    pub fn checked_mul_int(self, rhs: u128) -> Result<Wad, TypeError> {
        self.0.checked_mul(rhs).map(Wad).ok_or(TypeError::Overflow)
    }

    /// Divide by an integer.
    pub fn checked_div_int(self, rhs: u128) -> Result<Wad, TypeError> {
        if rhs == 0 {
            return Err(TypeError::DivisionByZero);
        }
        Ok(Wad(self.0 / rhs))
    }

    /// `min(self, other)`.
    pub fn min(self, other: Wad) -> Wad {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// `max(self, other)`.
    pub fn max(self, other: Wad) -> Wad {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Apply a percentage expressed in basis points (1 bp = 0.01 %).
    pub fn bps(self, basis_points: u32) -> Wad {
        Wad(mul_div(self.0, basis_points as u128, 10_000).unwrap_or(u128::MAX))
    }

    /// Convert to a [`SignedWad`].
    pub fn to_signed(self) -> SignedWad {
        SignedWad {
            negative: false,
            magnitude: self,
        }
    }

    /// Absolute difference between two values.
    pub fn abs_diff(self, other: Wad) -> Wad {
        if self >= other {
            Wad(self.0 - other.0)
        } else {
            Wad(other.0 - self.0)
        }
    }

    /// Convert to a [`Ray`] (multiply by 10^9).
    pub fn to_ray(self) -> Result<Ray, TypeError> {
        self.0
            .checked_mul(1_000_000_000)
            .map(Ray)
            .ok_or(TypeError::Overflow)
    }
}

// Operator impls panic on overflow (debug-friendly); protocol code that must
// be robust uses the checked variants explicitly.
impl Add for Wad {
    type Output = Wad;
    fn add(self, rhs: Wad) -> Wad {
        self.checked_add(rhs).expect("Wad add overflow")
    }
}
impl AddAssign for Wad {
    fn add_assign(&mut self, rhs: Wad) {
        *self = *self + rhs;
    }
}
impl Sub for Wad {
    type Output = Wad;
    fn sub(self, rhs: Wad) -> Wad {
        self.checked_sub(rhs).expect("Wad sub underflow")
    }
}
impl SubAssign for Wad {
    fn sub_assign(&mut self, rhs: Wad) {
        *self = *self - rhs;
    }
}
impl Mul for Wad {
    type Output = Wad;
    fn mul(self, rhs: Wad) -> Wad {
        self.checked_mul(rhs).expect("Wad mul overflow")
    }
}
impl Div for Wad {
    type Output = Wad;
    fn div(self, rhs: Wad) -> Wad {
        self.checked_div(rhs).expect("Wad div error")
    }
}
impl Sum for Wad {
    fn sum<I: Iterator<Item = Wad>>(iter: I) -> Wad {
        iter.fold(Wad::ZERO, |acc, x| acc + x)
    }
}

impl fmt::Display for Wad {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let int = self.0 / WAD;
        let frac = self.0 % WAD;
        if frac == 0 {
            write!(f, "{int}")
        } else {
            let mut frac_str = format!("{frac:018}");
            while frac_str.ends_with('0') {
                frac_str.pop();
            }
            write!(f, "{int}.{frac_str}")
        }
    }
}

impl FromStr for Wad {
    type Err = TypeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        let (int_str, frac_str) = match s.split_once('.') {
            Some((i, fr)) => (i, fr),
            None => (s, ""),
        };
        if frac_str.len() > 18 {
            return Err(TypeError::Parse("Wad: more than 18 decimal places"));
        }
        let int: u128 = if int_str.is_empty() {
            0
        } else {
            int_str
                .parse()
                .map_err(|_| TypeError::Parse("Wad integer part"))?
        };
        let mut frac: u128 = if frac_str.is_empty() {
            0
        } else {
            frac_str
                .parse()
                .map_err(|_| TypeError::Parse("Wad fractional part"))?
        };
        for _ in 0..(18 - frac_str.len()) {
            frac *= 10;
        }
        int.checked_mul(WAD)
            .and_then(|x| x.checked_add(frac))
            .map(Wad)
            .ok_or(TypeError::Overflow)
    }
}

// ---------------------------------------------------------------------------
// Ray
// ---------------------------------------------------------------------------

/// Unsigned fixed-point number with 27 decimal places, used for interest-rate
/// indexes (the precision Aave and MakerDAO use for per-second/per-block
/// compounding).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Ray(pub u128);

impl Ray {
    /// Zero.
    pub const ZERO: Ray = Ray(0);
    /// One (10^27 raw).
    pub const ONE: Ray = Ray(RAY);

    /// Construct from the raw 27-decimal representation.
    pub const fn from_raw(raw: u128) -> Self {
        Ray(raw)
    }

    /// Construct from an integer number of whole units.
    pub const fn from_int(value: u64) -> Self {
        Ray(value as u128 * RAY)
    }

    /// Raw representation.
    pub const fn raw(self) -> u128 {
        self.0
    }

    /// Fixed-point multiplication `self * rhs / 1e27`.
    pub fn checked_mul(self, rhs: Ray) -> Result<Ray, TypeError> {
        mul_div(self.0, rhs.0, RAY).map(Ray)
    }

    /// Fixed-point division `self * 1e27 / rhs`.
    pub fn checked_div(self, rhs: Ray) -> Result<Ray, TypeError> {
        if rhs.0 == 0 {
            return Err(TypeError::DivisionByZero);
        }
        mul_div(self.0, RAY, rhs.0).map(Ray)
    }

    /// Checked addition.
    pub fn checked_add(self, rhs: Ray) -> Result<Ray, TypeError> {
        self.0
            .checked_add(rhs.0)
            .map(Ray)
            .ok_or(TypeError::Overflow)
    }

    /// Truncate to a [`Wad`] (divide by 10^9).
    pub fn to_wad(self) -> Wad {
        Wad(self.0 / 1_000_000_000)
    }

    /// Convert to `f64` for reporting.
    pub fn to_f64(self) -> f64 {
        self.0 as f64 / RAY as f64
    }

    /// Compound interest approximation: `(1 + rate_per_period)^periods`
    /// computed by square-and-multiply on the Ray representation. `self` is
    /// the *per-period* rate (e.g. per block), not 1+rate.
    pub fn compound(self, periods: u64) -> Result<Ray, TypeError> {
        let mut base = Ray::ONE.checked_add(self)?;
        let mut exp = periods;
        let mut acc = Ray::ONE;
        while exp > 0 {
            if exp & 1 == 1 {
                acc = acc.checked_mul(base)?;
            }
            exp >>= 1;
            if exp > 0 {
                base = base.checked_mul(base)?;
            }
        }
        Ok(acc)
    }
}

impl fmt::Display for Ray {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_wad())
    }
}

// ---------------------------------------------------------------------------
// SignedWad
// ---------------------------------------------------------------------------

/// Signed 18-decimal fixed point, used for profit-and-loss accounting.
///
/// Stored as sign + magnitude so the full unsigned range stays representable;
/// negative zero is normalised to positive zero.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SignedWad {
    /// True when the value is strictly negative.
    pub negative: bool,
    /// Absolute value.
    pub magnitude: Wad,
}

impl SignedWad {
    /// Zero.
    pub const ZERO: SignedWad = SignedWad {
        negative: false,
        magnitude: Wad::ZERO,
    };

    /// A positive value.
    pub fn positive(magnitude: Wad) -> Self {
        SignedWad {
            negative: false,
            magnitude,
        }
    }

    /// A negative value (normalised: `-0` becomes `+0`).
    pub fn negative(magnitude: Wad) -> Self {
        SignedWad {
            negative: !magnitude.is_zero(),
            magnitude,
        }
    }

    /// `a - b` over unsigned operands, never panicking.
    pub fn sub_wads(a: Wad, b: Wad) -> Self {
        if a >= b {
            SignedWad::positive(a - b)
        } else {
            SignedWad::negative(b - a)
        }
    }

    /// Whether the value is strictly negative.
    pub fn is_negative(self) -> bool {
        self.negative && !self.magnitude.is_zero()
    }

    /// Whether the value is zero.
    pub fn is_zero(self) -> bool {
        self.magnitude.is_zero()
    }

    /// Signed addition.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, rhs: SignedWad) -> SignedWad {
        match (self.negative, rhs.negative) {
            (false, false) => SignedWad::positive(self.magnitude + rhs.magnitude),
            (true, true) => SignedWad::negative(self.magnitude + rhs.magnitude),
            (false, true) => SignedWad::sub_wads(self.magnitude, rhs.magnitude),
            (true, false) => SignedWad::sub_wads(rhs.magnitude, self.magnitude),
        }
    }

    /// Signed subtraction.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, rhs: SignedWad) -> SignedWad {
        self.add(rhs.neg())
    }

    /// Convert to `f64` (negative values map to negative floats).
    pub fn to_f64(self) -> f64 {
        let v = self.magnitude.to_f64();
        if self.is_negative() {
            -v
        } else {
            v
        }
    }
}

impl Neg for SignedWad {
    type Output = SignedWad;
    fn neg(self) -> SignedWad {
        if self.magnitude.is_zero() {
            SignedWad::ZERO
        } else {
            SignedWad {
                negative: !self.negative,
                magnitude: self.magnitude,
            }
        }
    }
}

impl PartialEq for SignedWad {
    fn eq(&self, other: &Self) -> bool {
        if self.magnitude.is_zero() && other.magnitude.is_zero() {
            return true;
        }
        self.negative == other.negative && self.magnitude == other.magnitude
    }
}
impl Eq for SignedWad {}

impl PartialOrd for SignedWad {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for SignedWad {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self.is_negative(), other.is_negative()) {
            (true, false) => Ordering::Less,
            (false, true) => Ordering::Greater,
            (false, false) => self.magnitude.cmp(&other.magnitude),
            (true, true) => other.magnitude.cmp(&self.magnitude),
        }
    }
}

impl Default for SignedWad {
    fn default() -> Self {
        SignedWad::ZERO
    }
}

impl Sum for SignedWad {
    fn sum<I: Iterator<Item = SignedWad>>(iter: I) -> SignedWad {
        iter.fold(SignedWad::ZERO, |acc, x| acc.add(x))
    }
}

impl fmt::Display for SignedWad {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_negative() {
            write!(f, "-{}", self.magnitude)
        } else {
            write!(f, "{}", self.magnitude)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_mul_small() {
        let p = U256::full_mul(6, 7);
        assert_eq!(p.lo, 42);
        assert_eq!(p.hi, 0);
    }

    #[test]
    fn mul_div_ceil_rounds_up_exactly_when_inexact() {
        assert_eq!(mul_div_ceil(7, 3, 2).unwrap(), 11); // 21/2 = 10.5 → 11
        assert_eq!(mul_div_ceil(6, 3, 2).unwrap(), 9); // exact → no bump
        assert_eq!(mul_div_ceil(0, 3, 2).unwrap(), 0);
        assert!(mul_div_ceil(1, 1, 0).is_err());
        assert!(mul_div_ceil(0, 0, 0).is_err());
        // A 256-bit intermediate that divides back into range.
        let big = u128::MAX / 2;
        assert_eq!(mul_div_ceil(big, 4, 4).unwrap(), big);
        // Remainder propagates through the wide path too.
        assert_eq!(mul_div_ceil(u128::MAX, 3, 7).unwrap(), {
            let (q, r) = U256::full_mul(u128::MAX, 3).div_rem_u128(7).unwrap();
            assert!(r > 0);
            q + 1
        });
        // Quotients beyond 128 bits overflow as errors, not wraps.
        assert!(mul_div_ceil(u128::MAX, u128::MAX, 1).is_err());
    }

    #[test]
    fn div_rem_matches_native_division_on_narrow_values() {
        for (a, b) in [(12_345u128, 7u128), (1, 1), (u128::MAX, u128::MAX)] {
            let (q, r) = U256::full_mul(a, 1).div_rem_u128(b).unwrap();
            assert_eq!((q, r), (a / b, a % b));
        }
    }

    /// The Knuth-D fast division must agree with the bitwise reference on a
    /// large deterministic sample of wide operands (both divisor classes:
    /// single-limb and two-limb), including the boundary shapes that trip
    /// naive implementations.
    #[test]
    fn knuth_division_matches_bitwise_reference() {
        // xorshift128+ keeps the sample deterministic without rand.
        let mut state = (0x9e3779b97f4a7c15u64, 0xbf58476d1ce4e5b9u64);
        let mut next = move || {
            let (mut x, y) = state;
            x ^= x << 23;
            x ^= x >> 17;
            x ^= y ^ (y >> 26);
            state = (y, x);
            x.wrapping_add(y)
        };
        let mut next_u128 = move || ((next() as u128) << 64) | next() as u128;
        let mut checked = 0u32;
        for i in 0..20_000 {
            let a = next_u128();
            let b = next_u128();
            // Vary magnitudes so every branch is exercised.
            let a = a >> (i % 5 * 25);
            let b = b >> (i % 7 * 18);
            let divisor = match i % 4 {
                0 => WAD,
                1 => RAY,
                2 => (b >> 64).max(1),
                _ => b.max(1),
            };
            let value = U256::full_mul(a, b.max(1));
            let fast = value.div_rem_u128(divisor);
            let reference = value.div_rem_u128_reference(divisor);
            match (fast, reference) {
                (Ok(f), Ok(r)) => {
                    assert_eq!(f, r, "a={a} b={b} divisor={divisor}");
                    checked += 1;
                }
                (Err(_), Err(_)) => {}
                (f, r) => {
                    panic!("divergent outcomes for a={a} b={b} divisor={divisor}: {f:?} vs {r:?}")
                }
            }
        }
        assert!(checked > 5_000, "sample too thin: {checked}");
        // Hand-picked boundary shapes.
        for (value, divisor) in [
            (U256 { hi: 1, lo: 0 }, 2u128),
            (
                U256 {
                    hi: 1,
                    lo: u128::MAX,
                },
                2,
            ),
            (
                U256 {
                    hi: u128::MAX - 1,
                    lo: u128::MAX,
                },
                u128::MAX,
            ),
            (
                U256 {
                    hi: 0,
                    lo: u128::MAX,
                },
                1,
            ),
            (U256 { hi: 5, lo: 0 }, (1u128 << 64) + 1),
            (U256 { hi: 5, lo: 12_345 }, 6u128 << 64),
            (
                U256 {
                    hi: 1 << 63,
                    lo: 42,
                },
                (1u128 << 127) + 99,
            ),
        ] {
            assert_eq!(
                value.div_rem_u128(divisor).unwrap(),
                value.div_rem_u128_reference(divisor).unwrap(),
                "hi={} lo={} divisor={divisor}",
                value.hi,
                value.lo,
            );
        }
    }

    #[test]
    fn full_mul_large() {
        // (2^127) * 4 = 2^129 → hi = 2, lo = 0
        let p = U256::full_mul(1u128 << 127, 4);
        assert_eq!(p.hi, 2);
        assert_eq!(p.lo, 0);
    }

    #[test]
    fn div_roundtrip() {
        let a = 123_456_789_u128 * WAD;
        let b = 987_654_321_u128 * WAD;
        let prod = U256::full_mul(a, b);
        let q = prod.div_u128(b).unwrap();
        assert_eq!(q, a);
    }

    #[test]
    fn div_by_zero_rejected() {
        assert_eq!(
            U256::full_mul(1, 1).div_u128(0),
            Err(TypeError::DivisionByZero)
        );
    }

    #[test]
    fn div_overflowing_quotient_rejected() {
        let p = U256::full_mul(u128::MAX, u128::MAX);
        assert_eq!(p.div_u128(1), Err(TypeError::Overflow));
    }

    #[test]
    fn wad_mul_basic() {
        let a = Wad::from_int(3);
        let b = Wad::from_str("1.5").unwrap();
        assert_eq!(a.checked_mul(b).unwrap(), Wad::from_str("4.5").unwrap());
    }

    #[test]
    fn wad_div_basic() {
        let a = Wad::from_int(1);
        let b = Wad::from_int(3);
        let third = a.checked_div(b).unwrap();
        // 0.333... truncated
        assert_eq!(third.raw(), WAD / 3);
    }

    #[test]
    fn wad_display_and_parse() {
        let w = Wad::from_str("3500.25").unwrap();
        assert_eq!(w.to_string(), "3500.25");
        assert_eq!(Wad::from_str(&w.to_string()).unwrap(), w);
        assert_eq!(Wad::from_int(7).to_string(), "7");
    }

    #[test]
    fn wad_parse_rejects_excess_precision() {
        assert!(Wad::from_str("1.0000000000000000001").is_err());
    }

    #[test]
    fn wad_from_f64_roundtrip_close() {
        let w = Wad::from_f64(3321.75);
        assert!((w.to_f64() - 3321.75).abs() < 1e-9);
        assert_eq!(Wad::from_f64(-1.0), Wad::ZERO);
        assert_eq!(Wad::from_f64(f64::NAN), Wad::ZERO);
    }

    #[test]
    fn wad_bps() {
        let v = Wad::from_int(10_000);
        assert_eq!(v.bps(50), Wad::from_int(50)); // 0.5%
        assert_eq!(v.bps(10_000), v); // 100%
    }

    #[test]
    fn ray_compound_zero_rate() {
        assert_eq!(Ray::ZERO.compound(1000).unwrap(), Ray::ONE);
    }

    #[test]
    fn ray_compound_matches_naive() {
        // 0.1% per period over 10 periods.
        let rate = Ray::from_raw(RAY / 1000);
        let fast = rate.compound(10).unwrap();
        let mut naive = Ray::ONE;
        for _ in 0..10 {
            naive = naive
                .checked_mul(Ray::ONE.checked_add(rate).unwrap())
                .unwrap();
        }
        assert_eq!(fast, naive);
    }

    #[test]
    fn signed_wad_arithmetic() {
        let five = SignedWad::positive(Wad::from_int(5));
        let eight = SignedWad::positive(Wad::from_int(8));
        let diff = five.sub(eight);
        assert!(diff.is_negative());
        assert_eq!(diff.magnitude, Wad::from_int(3));
        assert_eq!(diff.add(eight), five);
        assert_eq!(
            SignedWad::sub_wads(Wad::from_int(2), Wad::from_int(2)),
            SignedWad::ZERO
        );
    }

    #[test]
    fn signed_wad_ordering() {
        let neg = SignedWad::negative(Wad::from_int(1));
        let pos = SignedWad::positive(Wad::from_int(1));
        assert!(neg < SignedWad::ZERO);
        assert!(SignedWad::ZERO < pos);
        assert!(SignedWad::negative(Wad::from_int(5)) < SignedWad::negative(Wad::from_int(1)));
    }

    #[test]
    fn wad_saturating() {
        assert_eq!(Wad::from_int(1).saturating_sub(Wad::from_int(2)), Wad::ZERO);
        assert_eq!(Wad::MAX.saturating_add(Wad::ONE), Wad::MAX);
    }
}
