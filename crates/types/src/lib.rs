//! # defi-types
//!
//! Foundation value types shared by every crate in the `defi-liquidations`
//! reproduction suite:
//!
//! * [`fixed`] — 18-decimal ([`Wad`]) and 27-decimal ([`Ray`]) fixed-point
//!   arithmetic backed by a minimal internal 256-bit intermediate, mirroring
//!   the numeric conventions of MakerDAO / Aave / Compound contracts.
//! * [`address`] — 20-byte account/contract addresses and 32-byte hashes.
//! * [`token`] — the token universe used in the paper's evaluation (ETH,
//!   WBTC, DAI, USDC, …) and an asset registry.
//! * [`time`] — block-number ⇄ timestamp ⇄ calendar-month mapping used by the
//!   measurement pipeline (the paper reports everything by block and month).
//! * [`error`] — the shared arithmetic/domain error type.
//!
//! The types are deliberately `Copy` where cheap, `serde`-serialisable, and
//! panic-free: all arithmetic that can overflow or divide by zero has
//! checked variants returning [`TypeError`].

#![forbid(unsafe_code)]

pub mod address;
pub mod error;
pub mod fixed;
pub mod platform;
pub mod time;
pub mod token;

pub use address::{Address, TxHash};
pub use error::TypeError;
pub use fixed::{mul_div_ceil, mul_div_floor, Ray, SignedWad, Wad, RAY, WAD};
pub use platform::Platform;
pub use time::{BlockNumber, MonthTag, TimeMap, Timestamp};
pub use token::{Token, TokenAmount, TokenInfo, TokenRegistry};

/// USD value expressed as a [`Wad`] (18 decimals). The paper normalises all
/// measurements to USD using the protocols' own oracle prices at the
/// settlement block; we keep that convention throughout the suite.
pub type UsdValue = Wad;

/// A USD-per-token price, 18-decimal fixed point.
pub type Price = Wad;
