//! The lending platforms studied by the paper.
//!
//! The enum lives in `defi-types` (rather than `defi-lending`) because the
//! chain event vocabulary, the analytics pipeline and the benchmark harness
//! all need to tag records by platform without depending on the protocol
//! implementations.

use core::fmt;
use core::str::FromStr;
use serde::{Deserialize, Serialize};

use crate::error::TypeError;

/// One of the lending platforms covered by the study (≥ 85 % of the Ethereum
/// lending market at the paper's time of writing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Platform {
    /// Aave version 1 (fixed-spread, close factor 50 %).
    AaveV1,
    /// Aave version 2, the December 2020 upgrade (same core mechanism).
    AaveV2,
    /// Compound (fixed-spread, close factor 50 %, spread 8 %).
    Compound,
    /// dYdX (fixed-spread, close factor 100 %, spread 5 %).
    DyDx,
    /// MakerDAO (tend–dent auction liquidation of CDPs).
    MakerDao,
}

impl Platform {
    /// All platforms, in the order the paper's tables list them.
    pub const ALL: [Platform; 5] = [
        Platform::AaveV1,
        Platform::AaveV2,
        Platform::Compound,
        Platform::DyDx,
        Platform::MakerDao,
    ];

    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Platform::AaveV1 => "Aave V1",
            Platform::AaveV2 => "Aave V2",
            Platform::Compound => "Compound",
            Platform::DyDx => "dYdX",
            Platform::MakerDao => "MakerDAO",
        }
    }

    /// Whether the platform uses the atomic fixed-spread liquidation model
    /// (as opposed to MakerDAO's non-atomic auction).
    pub fn is_fixed_spread(self) -> bool {
        !matches!(self, Platform::MakerDao)
    }

    /// Protocol inception block on mainnet, as reported in §4.2 footnote 5.
    pub fn inception_block(self) -> u64 {
        match self {
            Platform::AaveV1 => 9_241_022,
            // Aave V2 launched with the December 2020 upgrade.
            Platform::AaveV2 => 11_360_000,
            Platform::Compound => 7_710_733,
            Platform::DyDx => 7_575_711,
            Platform::MakerDao => 8_040_587,
        }
    }
}

impl fmt::Display for Platform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Platform {
    type Err = TypeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let normalised = s.to_ascii_lowercase().replace([' ', '-', '_'], "");
        match normalised.as_str() {
            "aavev1" | "aave1" => Ok(Platform::AaveV1),
            "aavev2" | "aave2" | "aave" => Ok(Platform::AaveV2),
            "compound" => Ok(Platform::Compound),
            "dydx" => Ok(Platform::DyDx),
            "makerdao" | "maker" => Ok(Platform::MakerDao),
            _ => Err(TypeError::Parse("Platform")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper_tables() {
        assert_eq!(Platform::AaveV1.name(), "Aave V1");
        assert_eq!(Platform::DyDx.name(), "dYdX");
        assert_eq!(Platform::MakerDao.name(), "MakerDAO");
    }

    #[test]
    fn fixed_spread_classification() {
        assert!(Platform::AaveV2.is_fixed_spread());
        assert!(Platform::Compound.is_fixed_spread());
        assert!(Platform::DyDx.is_fixed_spread());
        assert!(!Platform::MakerDao.is_fixed_spread());
    }

    #[test]
    fn parse_aliases() {
        assert_eq!("maker".parse::<Platform>().unwrap(), Platform::MakerDao);
        assert_eq!("Aave V1".parse::<Platform>().unwrap(), Platform::AaveV1);
        assert_eq!("dYdX".parse::<Platform>().unwrap(), Platform::DyDx);
        assert!("hotdog".parse::<Platform>().is_err());
    }

    #[test]
    fn inception_blocks_ordered_as_in_paper() {
        // dYdX < Compound < MakerDAO < Aave V1 (footnote 5 of the paper).
        assert!(Platform::DyDx.inception_block() < Platform::Compound.inception_block());
        assert!(Platform::Compound.inception_block() < Platform::MakerDao.inception_block());
        assert!(Platform::MakerDao.inception_block() < Platform::AaveV1.inception_block());
    }
}
