//! Bad-debt measurement (§4.4.2, Table 2).
//!
//! Table 2 reports, per platform and per assumed closing cost (≤ 10 USD and
//! ≤ 100 USD), the number of Type I (under-collateralized) and Type II
//! (excess-too-small-to-bother) positions at the snapshot block, together
//! with the collateral value locked in them. The classification logic lives
//! in [`defi_core::bad_debt`]; this module applies it to a snapshot of
//! per-platform position books.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use defi_core::bad_debt::{measure_bad_debts, BadDebtSummary};
use defi_core::position::Position;
use defi_types::{Platform, Wad};

/// One platform's Table 2 row: Type I plus Type II at two fee levels.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct BadDebtRow {
    /// Platform.
    pub platform: Platform,
    /// Type I bad debts (independent of the fee assumption).
    pub type_1: BadDebtSummary,
    /// Type II bad debts assuming a 10 USD closing cost.
    pub type_2_fee_10: BadDebtSummary,
    /// Type II bad debts assuming a 100 USD closing cost.
    pub type_2_fee_100: BadDebtSummary,
}

/// The full Table 2.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table2 {
    /// Per-platform rows.
    pub rows: Vec<BadDebtRow>,
}

impl Table2 {
    /// The row for a platform, if it was measured.
    pub fn row(&self, platform: Platform) -> Option<&BadDebtRow> {
        self.rows.iter().find(|r| r.platform == platform)
    }
}

/// Measure Table 2 over the per-platform position books at the snapshot block.
pub fn table2(positions_by_platform: &BTreeMap<Platform, Vec<Position>>) -> Table2 {
    let mut rows = Vec::new();
    for (platform, positions) in positions_by_platform {
        let (type_1_low, type_2_low) = measure_bad_debts(positions, Wad::from_int(10));
        let (_, type_2_high) = measure_bad_debts(positions, Wad::from_int(100));
        rows.push(BadDebtRow {
            platform: *platform,
            type_1: type_1_low,
            type_2_fee_10: type_2_low,
            type_2_fee_100: type_2_high,
        });
    }
    Table2 { rows }
}

/// Observer wrapper around [`table2`]: Table 2 is a property of the final
/// snapshot, so the measurement runs once in `on_run_end` over the position
/// books the session hands over.
#[derive(Debug, Default)]
pub struct BadDebtCollector {
    table: Option<Table2>,
}

impl BadDebtCollector {
    /// An empty collector.
    pub fn new() -> Self {
        BadDebtCollector::default()
    }

    /// The measured table (available after the run ended).
    pub fn table(&self) -> Option<&Table2> {
        self.table.as_ref()
    }

    /// Consume the collector, returning the table.
    pub fn into_table(self) -> Option<Table2> {
        self.table
    }
}

impl defi_sim::SimObserver for BadDebtCollector {
    fn on_run_end(&mut self, end: &defi_sim::RunEnd<'_>) {
        self.table = Some(table2(end.final_positions));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use defi_types::{Address, Token};

    fn position(collateral: u64, debt: u64) -> Position {
        Position::simple(
            Address::from_seed(collateral * 31 + debt),
            Token::ETH,
            Wad::from_int(collateral),
            Token::DAI,
            Wad::from_int(debt),
            Wad::from_f64(0.75),
            Wad::from_f64(0.08),
        )
    }

    #[test]
    fn table2_classifies_per_platform() {
        let mut books = BTreeMap::new();
        books.insert(
            Platform::Compound,
            vec![
                position(900, 1_000),   // Type I
                position(1_050, 1_000), // Type II at 100 USD fee only
                position(5_000, 1_000), // healthy
            ],
        );
        books.insert(Platform::DyDx, vec![position(5_000, 1_000)]);
        let table = table2(&books);
        let compound = table.row(Platform::Compound).unwrap();
        assert_eq!(compound.type_1.count, 1);
        assert_eq!(compound.type_2_fee_10.count, 0);
        assert_eq!(compound.type_2_fee_100.count, 1);
        assert_eq!(compound.type_1.total_positions, 3);
        let dydx = table.row(Platform::DyDx).unwrap();
        assert_eq!(dydx.type_1.count, 0);
        assert_eq!(dydx.type_2_fee_100.count, 0);
        assert!(table.row(Platform::AaveV1).is_none());
    }

    #[test]
    fn counts_grow_with_fee() {
        let book: Vec<Position> = (1..=50).map(|i| position(1_000 + i, 1_000)).collect();
        let mut books = BTreeMap::new();
        books.insert(Platform::AaveV2, book);
        let table = table2(&books);
        let row = table.row(Platform::AaveV2).unwrap();
        assert!(row.type_2_fee_100.count >= row.type_2_fee_10.count);
        assert!(row.type_2_fee_100.collateral_locked >= row.type_2_fee_10.collateral_locked);
    }
}
