//! Overall statistics: §4.2, Table 1, Figure 4 and Figure 5.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

use defi_types::{Address, BlockNumber, MonthTag, Platform, SignedWad, TimeMap, Wad};

use crate::records::LiquidationRecord;

/// One row of Table 1: liquidation count, unique liquidators and average
/// profit per platform.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Table1Row {
    /// Platform.
    pub platform: Platform,
    /// Number of settled liquidations.
    pub liquidations: u32,
    /// Number of unique liquidator addresses.
    pub liquidators: u32,
    /// Average gross profit per liquidation (USD; may be negative for
    /// auction-based liquidations).
    pub average_profit: SignedWad,
}

/// Table 1 plus the totals row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1 {
    /// Per-platform rows in the paper's order.
    pub rows: Vec<Table1Row>,
    /// Total liquidations across platforms.
    pub total_liquidations: u32,
    /// Total unique liquidators across platforms.
    pub total_liquidators: u32,
    /// Total gross profit across all liquidations (USD).
    pub total_profit: SignedWad,
}

/// Compute Table 1 from the liquidation ledger.
pub fn table1(records: &[LiquidationRecord]) -> Table1 {
    let mut rows = Vec::new();
    let mut all_liquidators: std::collections::BTreeSet<_> = std::collections::BTreeSet::new();
    let mut total_profit = SignedWad::ZERO;
    for platform in Platform::ALL {
        let platform_records: Vec<&LiquidationRecord> =
            records.iter().filter(|r| r.platform == platform).collect();
        if platform_records.is_empty() {
            continue;
        }
        let liquidators: std::collections::BTreeSet<_> =
            platform_records.iter().map(|r| r.liquidator).collect();
        let profit: SignedWad = platform_records.iter().map(|r| r.gross_profit()).sum();
        total_profit = total_profit.add(profit);
        all_liquidators.extend(liquidators.iter().copied());
        let count = platform_records.len() as u32;
        let average = if count > 0 {
            let magnitude = profit
                .magnitude
                .checked_div_int(count as u128)
                .unwrap_or(Wad::ZERO);
            SignedWad {
                negative: profit.negative,
                magnitude,
            }
        } else {
            SignedWad::ZERO
        };
        rows.push(Table1Row {
            platform,
            liquidations: count,
            liquidators: liquidators.len() as u32,
            average_profit: average,
        });
    }
    Table1 {
        total_liquidations: rows.iter().map(|r| r.liquidations).sum(),
        total_liquidators: all_liquidators.len() as u32,
        total_profit,
        rows,
    }
}

/// One point of the Figure 4 series: cumulative collateral sold through
/// liquidation, per platform.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AccumulativePoint {
    /// Block.
    pub block: BlockNumber,
    /// Cumulative collateral sold up to and including this block (USD).
    pub cumulative_usd: Wad,
}

/// Figure 4: the per-platform cumulative liquidated-collateral series.
pub fn accumulative_collateral_sold(
    records: &[LiquidationRecord],
) -> BTreeMap<Platform, Vec<AccumulativePoint>> {
    let mut by_platform: BTreeMap<Platform, Vec<&LiquidationRecord>> = BTreeMap::new();
    for record in records {
        by_platform.entry(record.platform).or_default().push(record);
    }
    by_platform
        .into_iter()
        .map(|(platform, mut platform_records)| {
            platform_records.sort_by_key(|r| r.block);
            let mut cumulative = Wad::ZERO;
            let series = platform_records
                .into_iter()
                .map(|r| {
                    cumulative = cumulative.saturating_add(r.collateral_received_usd);
                    AccumulativePoint {
                        block: r.block,
                        cumulative_usd: cumulative,
                    }
                })
                .collect();
            (platform, series)
        })
        .collect()
}

/// Figure 5: monthly accumulated gross liquidator profit per platform.
pub fn monthly_profit(
    records: &[LiquidationRecord],
) -> BTreeMap<Platform, BTreeMap<MonthTag, SignedWad>> {
    let mut out: BTreeMap<Platform, BTreeMap<MonthTag, SignedWad>> = BTreeMap::new();
    for record in records {
        let entry = out
            .entry(record.platform)
            .or_default()
            .entry(record.month)
            .or_insert(SignedWad::ZERO);
        *entry = entry.add(record.gross_profit());
    }
    out
}

/// §4.2 headline numbers: total liquidated collateral and total profit.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct HeadlineStats {
    /// Total collateral sold through liquidations (USD).
    pub total_collateral_sold: Wad,
    /// Total liquidator gross profit (USD, signed).
    pub total_profit: SignedWad,
    /// Number of liquidations.
    pub liquidation_count: u32,
    /// Number of unique liquidator addresses.
    pub liquidator_count: u32,
    /// Number of liquidations that were not profitable for the liquidator
    /// (gross profit ≤ 0; the paper reports 641 such auctions).
    pub unprofitable_liquidations: u32,
    /// Total loss incurred by those unprofitable liquidations (USD).
    pub unprofitable_loss: Wad,
}

/// Compute the headline statistics of §4.2/§4.3.1.
pub fn headline(records: &[LiquidationRecord]) -> HeadlineStats {
    let total_collateral_sold = records
        .iter()
        .map(|r| r.collateral_received_usd)
        .fold(Wad::ZERO, |acc, v| acc.saturating_add(v));
    let total_profit: SignedWad = records.iter().map(|r| r.gross_profit()).sum();
    let liquidators: std::collections::BTreeSet<_> = records.iter().map(|r| r.liquidator).collect();
    let unprofitable: Vec<&LiquidationRecord> = records
        .iter()
        .filter(|r| r.gross_profit().is_negative())
        .collect();
    HeadlineStats {
        total_collateral_sold,
        total_profit,
        liquidation_count: records.len() as u32,
        liquidator_count: liquidators.len() as u32,
        unprofitable_liquidations: unprofitable.len() as u32,
        unprofitable_loss: unprofitable
            .iter()
            .map(|r| r.gross_profit().magnitude)
            .fold(Wad::ZERO, |acc, v| acc.saturating_add(v)),
    }
}

/// The most active / most profitable liquidator call-outs of §4.3.1.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TopLiquidators {
    /// Liquidation count of the most active liquidator.
    pub most_active_count: u32,
    /// Profit of the most active liquidator (USD).
    pub most_active_profit: SignedWad,
    /// Profit of the most profitable liquidator (USD).
    pub most_profitable_profit: SignedWad,
    /// Liquidation count of the most profitable liquidator.
    pub most_profitable_count: u32,
}

/// Identify the most active and most profitable liquidators.
pub fn top_liquidators(records: &[LiquidationRecord]) -> Option<TopLiquidators> {
    let mut by_liquidator: BTreeMap<_, (u32, SignedWad)> = BTreeMap::new();
    for record in records {
        let entry = by_liquidator
            .entry(record.liquidator)
            .or_insert((0, SignedWad::ZERO));
        entry.0 += 1;
        entry.1 = entry.1.add(record.gross_profit());
    }
    let most_active = by_liquidator.values().max_by_key(|(count, _)| *count)?;
    let most_profitable = by_liquidator.values().max_by(|a, b| a.1.cmp(&b.1))?;
    Some(TopLiquidators {
        most_active_count: most_active.0,
        most_active_profit: most_active.1,
        most_profitable_profit: most_profitable.1,
        most_profitable_count: most_profitable.0,
    })
}

/// Per-platform running totals behind Table 1.
#[derive(Debug, Clone)]
struct PlatformTally {
    count: u32,
    liquidators: BTreeSet<Address>,
    profit: SignedWad,
}

/// Everything the overall-statistics collector produces at the end of a run.
#[derive(Debug)]
pub struct OverallArtifacts {
    /// §4.2 headline statistics.
    pub headline: HeadlineStats,
    /// Table 1.
    pub table1: Table1,
    /// §4.3.1 call-outs.
    pub top_liquidators: Option<TopLiquidators>,
    /// Figure 4 series per platform.
    pub figure4: BTreeMap<Platform, Vec<AccumulativePoint>>,
    /// Figure 5 monthly profit per platform.
    pub figure5: BTreeMap<Platform, BTreeMap<MonthTag, SignedWad>>,
}

/// Incremental computation of the §4.2/§4.3.1 artefacts (headline, Table 1,
/// Figures 4–5, top liquidators): one [`observe_record`] call per settled
/// liquidation instead of a post-hoc scan of the ledger. Folding records in
/// settlement order reproduces the batch functions exactly, including their
/// accumulation order.
///
/// [`observe_record`]: OverallCollector::observe_record
#[derive(Debug, Default)]
pub struct OverallCollector {
    time_map: Option<TimeMap>,
    count: u32,
    total_collateral_sold: Wad,
    total_profit: Option<SignedWad>,
    unprofitable: u32,
    unprofitable_loss: Wad,
    by_liquidator: BTreeMap<Address, (u32, SignedWad)>,
    per_platform: BTreeMap<Platform, PlatformTally>,
    figure4: BTreeMap<Platform, Vec<AccumulativePoint>>,
    figure5: BTreeMap<Platform, BTreeMap<MonthTag, SignedWad>>,
}

impl OverallCollector {
    /// An empty collector.
    pub fn new() -> Self {
        OverallCollector::default()
    }

    pub(crate) fn set_time_map(&mut self, time_map: TimeMap) {
        self.time_map = Some(time_map);
    }

    /// Fold one settled liquidation into every running aggregate.
    pub fn observe_record(&mut self, record: &LiquidationRecord) {
        let gross = record.gross_profit();
        self.count += 1;
        self.total_collateral_sold = self
            .total_collateral_sold
            .saturating_add(record.collateral_received_usd);
        self.total_profit = Some(self.total_profit.unwrap_or(SignedWad::ZERO).add(gross));
        if gross.is_negative() {
            self.unprofitable += 1;
            self.unprofitable_loss = self.unprofitable_loss.saturating_add(gross.magnitude);
        }
        let liquidator = self
            .by_liquidator
            .entry(record.liquidator)
            .or_insert((0, SignedWad::ZERO));
        liquidator.0 += 1;
        liquidator.1 = liquidator.1.add(gross);

        let tally = self
            .per_platform
            .entry(record.platform)
            .or_insert_with(|| PlatformTally {
                count: 0,
                liquidators: BTreeSet::new(),
                profit: SignedWad::ZERO,
            });
        tally.count += 1;
        tally.liquidators.insert(record.liquidator);
        tally.profit = tally.profit.add(gross);

        let series = self.figure4.entry(record.platform).or_default();
        let cumulative = series
            .last()
            .map(|point| point.cumulative_usd)
            .unwrap_or(Wad::ZERO)
            .saturating_add(record.collateral_received_usd);
        series.push(AccumulativePoint {
            block: record.block,
            cumulative_usd: cumulative,
        });

        let monthly = self
            .figure5
            .entry(record.platform)
            .or_default()
            .entry(record.month)
            .or_insert(SignedWad::ZERO);
        *monthly = monthly.add(gross);
    }

    /// Finalise into the same artefacts the batch functions compute.
    pub fn finish(self) -> OverallArtifacts {
        let mut rows = Vec::new();
        let mut total_profit = SignedWad::ZERO;
        for platform in Platform::ALL {
            let Some(tally) = self.per_platform.get(&platform) else {
                continue;
            };
            total_profit = total_profit.add(tally.profit);
            let average = if tally.count > 0 {
                SignedWad {
                    negative: tally.profit.negative,
                    magnitude: tally
                        .profit
                        .magnitude
                        .checked_div_int(tally.count as u128)
                        .unwrap_or(Wad::ZERO),
                }
            } else {
                SignedWad::ZERO
            };
            rows.push(Table1Row {
                platform,
                liquidations: tally.count,
                liquidators: tally.liquidators.len() as u32,
                average_profit: average,
            });
        }
        let table1 = Table1 {
            total_liquidations: rows.iter().map(|r| r.liquidations).sum(),
            total_liquidators: self.by_liquidator.len() as u32,
            total_profit,
            rows,
        };
        let headline = HeadlineStats {
            total_collateral_sold: self.total_collateral_sold,
            total_profit: self.total_profit.unwrap_or(SignedWad::ZERO),
            liquidation_count: self.count,
            liquidator_count: self.by_liquidator.len() as u32,
            unprofitable_liquidations: self.unprofitable,
            unprofitable_loss: self.unprofitable_loss,
        };
        let most_active = self.by_liquidator.values().max_by_key(|(count, _)| *count);
        let most_profitable = self.by_liquidator.values().max_by(|a, b| a.1.cmp(&b.1));
        let top_liquidators = match (most_active, most_profitable) {
            (Some(active), Some(profitable)) => Some(TopLiquidators {
                most_active_count: active.0,
                most_active_profit: active.1,
                most_profitable_profit: profitable.1,
                most_profitable_count: profitable.0,
            }),
            _ => None,
        };
        OverallArtifacts {
            headline,
            table1,
            top_liquidators,
            figure4: self.figure4,
            figure5: self.figure5,
        }
    }
}

impl defi_sim::SimObserver for OverallCollector {
    fn on_run_start(&mut self, run: &defi_sim::RunStart<'_>) {
        self.set_time_map(run.time_map);
    }

    fn on_liquidation(&mut self, liquidation: &defi_sim::LiquidationObservation<'_>) {
        if let Some(record) = crate::records::observed_record(self.time_map, liquidation) {
            self.observe_record(&record);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::LiquidationKind;
    use defi_chain::AuctionPhase;
    use defi_types::{Address, Token};

    fn record(
        platform: Platform,
        liquidator_seed: u64,
        block: BlockNumber,
        repaid: u64,
        received: u64,
    ) -> LiquidationRecord {
        LiquidationRecord {
            platform,
            kind: if platform == Platform::MakerDao {
                LiquidationKind::Auction(AuctionPhase::Tend)
            } else {
                LiquidationKind::FixedSpread
            },
            liquidator: Address::from_seed(liquidator_seed),
            borrower: Address::from_seed(999),
            block,
            month: MonthTag::new(2020, (1 + (block % 12)) as u8),
            debt_token: Token::DAI,
            collateral_token: Token::ETH,
            debt_repaid_usd: Wad::from_int(repaid),
            collateral_received_usd: Wad::from_int(received),
            gas_price: 50,
            gas_used: 500_000,
            fee_usd: Wad::from_int(10),
            used_flash_loan: false,
            auction_started_at: None,
            auction_last_bid_at: None,
            tend_bids: 0,
            dent_bids: 0,
        }
    }

    #[test]
    fn table1_counts_and_averages() {
        let records = vec![
            record(Platform::Compound, 1, 1, 1_000, 1_080),
            record(Platform::Compound, 1, 2, 1_000, 1_080),
            record(Platform::Compound, 2, 3, 1_000, 1_040),
            record(Platform::DyDx, 3, 4, 2_000, 2_100),
        ];
        let table = table1(&records);
        let compound = table
            .rows
            .iter()
            .find(|r| r.platform == Platform::Compound)
            .unwrap();
        assert_eq!(compound.liquidations, 3);
        assert_eq!(compound.liquidators, 2);
        // Profits: 80 + 80 + 40 = 200 over 3 liquidations ≈ 66.67.
        assert!(compound.average_profit.magnitude > Wad::from_int(66));
        assert!(compound.average_profit.magnitude < Wad::from_int(67));
        assert_eq!(table.total_liquidations, 4);
        assert_eq!(table.total_liquidators, 3);
    }

    #[test]
    fn figure4_series_is_cumulative_and_sorted() {
        let records = vec![
            record(Platform::Compound, 1, 30, 1_000, 1_100),
            record(Platform::Compound, 1, 10, 1_000, 1_050),
            record(Platform::Compound, 1, 20, 1_000, 1_075),
        ];
        let fig4 = accumulative_collateral_sold(&records);
        let series = &fig4[&Platform::Compound];
        assert_eq!(series.len(), 3);
        assert!(series[0].block < series[1].block && series[1].block < series[2].block);
        assert_eq!(series[2].cumulative_usd, Wad::from_int(3_225));
        // Monotone.
        assert!(series[0].cumulative_usd < series[1].cumulative_usd);
    }

    #[test]
    fn monthly_profit_aggregates_by_month() {
        let mut a = record(Platform::MakerDao, 1, 1, 1_000, 1_200);
        a.month = MonthTag::new(2020, 3);
        let mut b = record(Platform::MakerDao, 1, 2, 1_000, 900); // a loss
        b.month = MonthTag::new(2020, 3);
        let fig5 = monthly_profit(&[a, b]);
        let march = fig5[&Platform::MakerDao][&MonthTag::new(2020, 3)];
        assert_eq!(march, SignedWad::positive(Wad::from_int(100)));
    }

    #[test]
    fn headline_counts_unprofitable() {
        let records = vec![
            record(Platform::MakerDao, 1, 1, 1_000, 900),
            record(Platform::Compound, 2, 2, 1_000, 1_100),
        ];
        let stats = headline(&records);
        assert_eq!(stats.liquidation_count, 2);
        assert_eq!(stats.unprofitable_liquidations, 1);
        assert_eq!(stats.unprofitable_loss, Wad::from_int(100));
        assert_eq!(stats.total_collateral_sold, Wad::from_int(2_000));
    }

    #[test]
    fn top_liquidators_identified() {
        let records = vec![
            record(Platform::Compound, 1, 1, 1_000, 1_010),
            record(Platform::Compound, 1, 2, 1_000, 1_010),
            record(Platform::Compound, 1, 3, 1_000, 1_010),
            record(Platform::Compound, 2, 4, 10_000, 11_000),
        ];
        let top = top_liquidators(&records).unwrap();
        assert_eq!(top.most_active_count, 3);
        assert_eq!(
            top.most_profitable_profit,
            SignedWad::positive(Wad::from_int(1_000))
        );
        assert_eq!(top.most_profitable_count, 1);
    }

    #[test]
    fn empty_records_are_handled() {
        assert!(top_liquidators(&[]).is_none());
        let table = table1(&[]);
        assert_eq!(table.total_liquidations, 0);
        assert!(table.rows.is_empty());
    }

    #[test]
    fn incremental_collector_matches_batch_functions() {
        let records = vec![
            record(Platform::Compound, 1, 10, 1_000, 1_080),
            record(Platform::MakerDao, 2, 11, 1_000, 900),
            record(Platform::Compound, 1, 12, 1_000, 1_040),
            record(Platform::DyDx, 3, 13, 2_000, 2_100),
        ];
        let mut collector = OverallCollector::new();
        for r in &records {
            collector.observe_record(r);
        }
        let artifacts = collector.finish();

        let batch_table1 = table1(&records);
        assert_eq!(
            artifacts.table1.total_liquidations,
            batch_table1.total_liquidations
        );
        assert_eq!(
            artifacts.table1.total_liquidators,
            batch_table1.total_liquidators
        );
        assert_eq!(artifacts.table1.total_profit, batch_table1.total_profit);
        assert_eq!(artifacts.table1.rows.len(), batch_table1.rows.len());
        for (a, b) in artifacts.table1.rows.iter().zip(&batch_table1.rows) {
            assert_eq!(a.platform, b.platform);
            assert_eq!(a.liquidations, b.liquidations);
            assert_eq!(a.liquidators, b.liquidators);
            assert_eq!(a.average_profit, b.average_profit);
        }

        let batch_headline = headline(&records);
        assert_eq!(
            artifacts.headline.liquidation_count,
            batch_headline.liquidation_count
        );
        assert_eq!(artifacts.headline.total_profit, batch_headline.total_profit);
        assert_eq!(
            artifacts.headline.total_collateral_sold,
            batch_headline.total_collateral_sold
        );
        assert_eq!(
            artifacts.headline.unprofitable_liquidations,
            batch_headline.unprofitable_liquidations
        );

        let batch_fig4 = accumulative_collateral_sold(&records);
        assert_eq!(artifacts.figure4.len(), batch_fig4.len());
        for (platform, series) in &artifacts.figure4 {
            let batch_series = &batch_fig4[platform];
            assert_eq!(series.len(), batch_series.len());
            for (a, b) in series.iter().zip(batch_series) {
                assert_eq!(a.block, b.block);
                assert_eq!(a.cumulative_usd, b.cumulative_usd);
            }
        }

        let batch_fig5 = monthly_profit(&records);
        assert_eq!(artifacts.figure5, batch_fig5);

        let batch_top = top_liquidators(&records).unwrap();
        let top = artifacts.top_liquidators.unwrap();
        assert_eq!(top.most_active_count, batch_top.most_active_count);
        assert_eq!(top.most_profitable_profit, batch_top.most_profitable_profit);
    }
}
