//! Unprofitable liquidation opportunities (§4.4.3, Table 3).
//!
//! A liquidatable position is an *unprofitable opportunity* when the bonus
//! the liquidator would collect (spread × repayable debt) does not cover the
//! liquidation transaction fee. Rational liquidators skip these, so they
//! drift towards Type I bad debt. Table 3 counts them per platform at two fee
//! assumptions (10 and 100 USD) and reports the collateral at stake.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use defi_core::bad_debt::is_unprofitable_liquidation;
use defi_core::position::Position;
use defi_types::{Platform, Wad};

/// Counts for one fee assumption.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct UnprofitableSummary {
    /// Number of unprofitable liquidation opportunities.
    pub count: u32,
    /// Number of liquidatable positions examined.
    pub liquidatable_positions: u32,
    /// Collateral value locked in the unprofitable opportunities (USD).
    pub collateral_at_stake: Wad,
}

impl UnprofitableSummary {
    /// Share of liquidatable positions that are unprofitable to liquidate, in percent.
    pub fn share_percent(&self) -> f64 {
        if self.liquidatable_positions == 0 {
            0.0
        } else {
            100.0 * self.count as f64 / self.liquidatable_positions as f64
        }
    }
}

/// One Table 3 row.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct UnprofitableRow {
    /// Platform.
    pub platform: Platform,
    /// Close factor used for the repayable-amount estimate.
    pub close_factor: Wad,
    /// Opportunities unprofitable at a 10 USD transaction fee.
    pub fee_10: UnprofitableSummary,
    /// Opportunities unprofitable at a 100 USD transaction fee.
    pub fee_100: UnprofitableSummary,
}

/// The full Table 3.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table3 {
    /// Per-platform rows.
    pub rows: Vec<UnprofitableRow>,
}

impl Table3 {
    /// The row for a platform.
    pub fn row(&self, platform: Platform) -> Option<&UnprofitableRow> {
        self.rows.iter().find(|r| r.platform == platform)
    }
}

fn close_factor_of(platform: Platform) -> Wad {
    match platform {
        Platform::DyDx | Platform::MakerDao => Wad::ONE,
        _ => Wad::from_f64(0.5),
    }
}

fn measure(positions: &[Position], close_factor: Wad, fee: Wad) -> UnprofitableSummary {
    let liquidatable: Vec<&Position> = positions.iter().filter(|p| p.is_liquidatable()).collect();
    let mut summary = UnprofitableSummary {
        liquidatable_positions: liquidatable.len() as u32,
        ..Default::default()
    };
    for position in liquidatable {
        if is_unprofitable_liquidation(position, close_factor, fee) {
            summary.count += 1;
            summary.collateral_at_stake = summary
                .collateral_at_stake
                .saturating_add(position.total_collateral_value());
        }
    }
    summary
}

/// Measure Table 3 over the per-platform position books.
pub fn table3(positions_by_platform: &BTreeMap<Platform, Vec<Position>>) -> Table3 {
    let mut rows = Vec::new();
    for (platform, positions) in positions_by_platform {
        let close_factor = close_factor_of(*platform);
        rows.push(UnprofitableRow {
            platform: *platform,
            close_factor,
            fee_10: measure(positions, close_factor, Wad::from_int(10)),
            fee_100: measure(positions, close_factor, Wad::from_int(100)),
        });
    }
    Table3 { rows }
}

/// Observer wrapper around [`table3`]: unprofitable opportunities are a
/// property of the final snapshot, measured once in `on_run_end`.
#[derive(Debug, Default)]
pub struct UnprofitableCollector {
    table: Option<Table3>,
}

impl UnprofitableCollector {
    /// An empty collector.
    pub fn new() -> Self {
        UnprofitableCollector::default()
    }

    /// The measured table (available after the run ended).
    pub fn table(&self) -> Option<&Table3> {
        self.table.as_ref()
    }

    /// Consume the collector, returning the table.
    pub fn into_table(self) -> Option<Table3> {
        self.table
    }
}

impl defi_sim::SimObserver for UnprofitableCollector {
    fn on_run_end(&mut self, end: &defi_sim::RunEnd<'_>) {
        self.table = Some(table3(end.final_positions));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use defi_types::{Address, Token};

    fn liq_position(collateral: u64, debt: u64) -> Position {
        // LT 0.75 → liquidatable when collateral*0.75 < debt.
        Position::simple(
            Address::from_seed(collateral * 7 + debt),
            Token::ETH,
            Wad::from_int(collateral),
            Token::DAI,
            Wad::from_int(debt),
            Wad::from_f64(0.75),
            Wad::from_f64(0.08),
        )
    }

    #[test]
    fn small_positions_are_unprofitable_opportunities() {
        let mut books = BTreeMap::new();
        books.insert(
            Platform::Compound,
            vec![
                liq_position(120, 100), // liquidatable, bonus = 4 USD → unprofitable at both fees? (4<10, 4<100)
                liq_position(12_000, 10_000), // liquidatable, bonus = 400 USD → profitable
                liq_position(100_000, 10_000), // healthy
            ],
        );
        let table = table3(&books);
        let row = table.row(Platform::Compound).unwrap();
        assert_eq!(row.fee_100.liquidatable_positions, 2);
        assert_eq!(row.fee_100.count, 1);
        assert_eq!(row.fee_10.count, 1);
        assert!(row.fee_100.share_percent() > 49.0);
        assert_eq!(row.fee_100.collateral_at_stake, Wad::from_int(120));
    }

    #[test]
    fn more_opportunities_become_unprofitable_as_fees_rise() {
        // Bonus = debt * 0.5 * 0.08 = 4% of debt → between 10 and 100 USD for
        // debts between 250 and 2,500 USD.
        let book: Vec<Position> = (1..=20)
            .map(|i| liq_position(i * 200 + i, i * 200))
            .collect();
        let mut books = BTreeMap::new();
        books.insert(Platform::AaveV2, book);
        let table = table3(&books);
        let row = table.row(Platform::AaveV2).unwrap();
        assert!(row.fee_100.count > row.fee_10.count);
    }

    #[test]
    fn dydx_uses_full_close_factor() {
        let mut books = BTreeMap::new();
        books.insert(Platform::DyDx, vec![liq_position(120, 100)]);
        let table = table3(&books);
        assert_eq!(table.row(Platform::DyDx).unwrap().close_factor, Wad::ONE);
    }
}
