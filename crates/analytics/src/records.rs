//! The unified liquidation ledger.
//!
//! The paper's measurements all start from the set of liquidation events
//! filtered out of the archive node. [`LiquidationRecord`] is that row type:
//! one settled liquidation (fixed-spread call or finalised auction) with its
//! USD valuation at the settlement block, the liquidator identity, the gas it
//! paid and the resulting profit-and-loss.

use serde::{Deserialize, Serialize};

use defi_chain::{AuctionPhase, Blockchain, ChainEvent, GweiPrice};
use defi_oracle::PriceOracle;
use defi_types::{Address, BlockNumber, MonthTag, Platform, SignedWad, TimeMap, Token, Wad};

/// Which mechanism settled the liquidation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LiquidationKind {
    /// Atomic fixed-spread `liquidationCall`.
    FixedSpread,
    /// MakerDAO tend–dent auction, terminated in the given phase.
    Auction(AuctionPhase),
}

/// One settled liquidation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LiquidationRecord {
    /// Platform.
    pub platform: Platform,
    /// Mechanism.
    pub kind: LiquidationKind,
    /// Liquidator (auction winner for auctions).
    pub liquidator: Address,
    /// Borrower whose position was liquidated.
    pub borrower: Address,
    /// Settlement block (finalisation block for auctions).
    pub block: BlockNumber,
    /// Calendar month of settlement.
    pub month: MonthTag,
    /// Token repaid.
    pub debt_token: Token,
    /// Collateral token received.
    pub collateral_token: Token,
    /// USD value of the repaid debt at settlement.
    pub debt_repaid_usd: Wad,
    /// USD value of the received collateral at settlement.
    pub collateral_received_usd: Wad,
    /// Gas price paid (gwei).
    pub gas_price: GweiPrice,
    /// Gas used.
    pub gas_used: u64,
    /// Transaction fee in USD (gas × gas price × ETH price at the block).
    pub fee_usd: Wad,
    /// Whether the liquidator funded the repayment with a flash loan.
    pub used_flash_loan: bool,
    /// For auctions: block at which the auction was initiated.
    pub auction_started_at: Option<BlockNumber>,
    /// For auctions: block of the last bid.
    pub auction_last_bid_at: Option<BlockNumber>,
    /// For auctions: number of tend bids.
    pub tend_bids: u32,
    /// For auctions: number of dent bids.
    pub dent_bids: u32,
}

impl LiquidationRecord {
    /// Gross profit (before the transaction fee): collateral received − debt
    /// repaid. The paper values the collateral at the settlement-block oracle
    /// price, i.e. assumes an immediate sale.
    pub fn gross_profit(&self) -> SignedWad {
        SignedWad::sub_wads(self.collateral_received_usd, self.debt_repaid_usd)
    }

    /// Net profit after the transaction fee.
    pub fn net_profit(&self) -> SignedWad {
        self.gross_profit().sub(SignedWad::positive(self.fee_usd))
    }

    /// Whether this record belongs to the DAI-debt / ETH-collateral market
    /// studied in §5.1.
    pub fn is_dai_eth(&self) -> bool {
        self.debt_token == Token::DAI && self.collateral_token.is_eth()
    }

    /// Duration of the auction in blocks (0 for fixed-spread liquidations).
    pub fn auction_duration_blocks(&self) -> u64 {
        match self.auction_started_at {
            Some(start) => self.block.saturating_sub(start),
            None => 0,
        }
    }
}

/// Build a [`LiquidationRecord`] from one logged settlement event, valuing
/// the transaction fee at the given ETH price. Returns `None` for events
/// that are not settlements. Both the batch [`collect_records`] scan and the
/// streaming [`RecordsCollector`] go through this one constructor, so the two
/// paths produce identical ledgers.
pub fn record_from_logged(
    logged: &defi_chain::LoggedEvent,
    eth_price: Wad,
    time_map: &TimeMap,
) -> Option<LiquidationRecord> {
    let fee_usd =
        Wad::from_f64(logged.gas_price as f64 * logged.gas_used as f64 * 1e-9 * eth_price.to_f64());
    match &logged.event {
        ChainEvent::Liquidation(event) => Some(LiquidationRecord {
            platform: event.platform,
            kind: LiquidationKind::FixedSpread,
            liquidator: event.liquidator,
            borrower: event.borrower,
            block: logged.block,
            month: time_map.month(logged.block),
            debt_token: event.debt_token,
            collateral_token: event.collateral_token,
            debt_repaid_usd: event.debt_repaid_usd,
            collateral_received_usd: event.collateral_seized_usd,
            gas_price: logged.gas_price,
            gas_used: logged.gas_used,
            fee_usd,
            used_flash_loan: event.used_flash_loan,
            auction_started_at: None,
            auction_last_bid_at: None,
            tend_bids: 0,
            dent_bids: 0,
        }),
        ChainEvent::AuctionFinalized {
            winner,
            debt_repaid_usd,
            collateral_token,
            collateral_received_usd,
            borrower,
            started_at,
            last_bid_at,
            tend_bids,
            dent_bids,
            final_phase,
            ..
        } => Some(LiquidationRecord {
            platform: Platform::MakerDao,
            kind: LiquidationKind::Auction(*final_phase),
            liquidator: *winner,
            borrower: *borrower,
            block: logged.block,
            month: time_map.month(logged.block),
            debt_token: Token::DAI,
            collateral_token: *collateral_token,
            debt_repaid_usd: *debt_repaid_usd,
            collateral_received_usd: *collateral_received_usd,
            gas_price: logged.gas_price,
            gas_used: logged.gas_used,
            fee_usd,
            used_flash_loan: false,
            auction_started_at: Some(*started_at),
            auction_last_bid_at: Some(*last_bid_at),
            tend_bids: *tend_bids,
            dent_bids: *dent_bids,
        }),
        _ => None,
    }
}

/// Extract every liquidation record from the chain event log.
///
/// The market oracle values transaction fees; the paper normalises with the
/// on-chain oracle price at the settlement block.
pub fn collect_records(chain: &Blockchain, market_oracle: &PriceOracle) -> Vec<LiquidationRecord> {
    let time_map: &TimeMap = chain.time_map();
    chain
        .events()
        .iter()
        .filter_map(|logged| {
            let eth_price = market_oracle
                .price_at(logged.block, Token::ETH)
                .unwrap_or_else(|| market_oracle.price_or_zero(Token::ETH));
            record_from_logged(logged, eth_price, time_map)
        })
        .collect()
}

/// Streaming builder of the liquidation ledger: the observer equivalent of
/// [`collect_records`], accumulating one record per settlement as the run
/// produces it.
#[derive(Debug, Default)]
pub struct RecordsCollector {
    time_map: Option<TimeMap>,
    records: Vec<LiquidationRecord>,
}

impl RecordsCollector {
    /// An empty collector.
    pub fn new() -> Self {
        RecordsCollector::default()
    }

    /// The ledger accumulated so far.
    pub fn records(&self) -> &[LiquidationRecord] {
        &self.records
    }

    /// Consume the collector, returning the ledger.
    pub fn into_records(self) -> Vec<LiquidationRecord> {
        self.records
    }

    pub(crate) fn set_time_map(&mut self, time_map: TimeMap) {
        self.time_map = Some(time_map);
    }

    pub(crate) fn observe(
        &mut self,
        liquidation: &defi_sim::LiquidationObservation<'_>,
    ) -> Option<&LiquidationRecord> {
        let record = observed_record(self.time_map, liquidation)?;
        self.records.push(record);
        self.records.last()
    }
}

/// Build a record from a streamed observation, falling back to the paper's
/// study-window calendar when the observer was attached without seeing
/// `on_run_start`. The one helper every streaming collector routes through.
pub(crate) fn observed_record(
    time_map: Option<TimeMap>,
    liquidation: &defi_sim::LiquidationObservation<'_>,
) -> Option<LiquidationRecord> {
    let time_map = time_map.unwrap_or_else(TimeMap::paper_study_window);
    record_from_logged(liquidation.logged, liquidation.eth_price, &time_map)
}

impl defi_sim::SimObserver for RecordsCollector {
    fn on_run_start(&mut self, run: &defi_sim::RunStart<'_>) {
        self.set_time_map(run.time_map);
    }

    fn on_liquidation(&mut self, liquidation: &defi_sim::LiquidationObservation<'_>) {
        self.observe(liquidation);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use defi_types::Wad;

    fn record(platform: Platform, repaid: u64, received: u64, fee: u64) -> LiquidationRecord {
        LiquidationRecord {
            platform,
            kind: LiquidationKind::FixedSpread,
            liquidator: Address::from_seed(1),
            borrower: Address::from_seed(2),
            block: 10_000_000,
            month: MonthTag::new(2020, 5),
            debt_token: Token::DAI,
            collateral_token: Token::ETH,
            debt_repaid_usd: Wad::from_int(repaid),
            collateral_received_usd: Wad::from_int(received),
            gas_price: 100,
            gas_used: 500_000,
            fee_usd: Wad::from_int(fee),
            used_flash_loan: false,
            auction_started_at: None,
            auction_last_bid_at: None,
            tend_bids: 0,
            dent_bids: 0,
        }
    }

    #[test]
    fn profit_accounting() {
        let r = record(Platform::Compound, 1_000, 1_080, 30);
        assert_eq!(r.gross_profit(), SignedWad::positive(Wad::from_int(80)));
        assert_eq!(r.net_profit(), SignedWad::positive(Wad::from_int(50)));
        assert!(r.is_dai_eth());
    }

    #[test]
    fn losses_are_negative() {
        let r = record(Platform::MakerDao, 1_000, 900, 30);
        assert!(r.gross_profit().is_negative());
        assert_eq!(r.net_profit(), SignedWad::negative(Wad::from_int(130)));
    }

    #[test]
    fn dai_eth_filter() {
        let mut r = record(Platform::DyDx, 1_000, 1_050, 10);
        r.debt_token = Token::USDC;
        assert!(!r.is_dai_eth());
        r.debt_token = Token::DAI;
        r.collateral_token = Token::WBTC;
        assert!(!r.is_dai_eth());
    }

    #[test]
    fn auction_duration() {
        let mut r = record(Platform::MakerDao, 1_000, 1_050, 10);
        r.auction_started_at = Some(9_999_000);
        assert_eq!(r.auction_duration_blocks(), 1_000);
        r.auction_started_at = None;
        assert_eq!(r.auction_duration_blocks(), 0);
    }
}
