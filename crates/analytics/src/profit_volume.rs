//! The profit–volume mechanism comparison (§5.1, Figure 9) and the monthly
//! DAI/ETH liquidation counts (Appendix B, Table 8).
//!
//! To avoid being biased by cross-asset price moves, the comparison is
//! restricted to liquidations repaid in DAI and collateralized in ETH, which
//! exist on every studied platform. The monthly profit from those
//! liquidations is divided by the monthly average ETH-collateral volume of
//! DAI-debt positions.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use defi_core::comparison::{MechanismComparison, ProfitVolumeRatio};
use defi_sim::VolumeSample;
use defi_types::{MonthTag, Platform, TimeMap, Wad};

use crate::records::LiquidationRecord;

/// Table 8: monthly DAI/ETH liquidation counts per platform.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Table8 {
    /// `counts[month][platform]` = number of DAI/ETH liquidations.
    pub counts: BTreeMap<MonthTag, BTreeMap<Platform, u32>>,
}

impl Table8 {
    /// The count for a month/platform (0 when absent).
    pub fn count(&self, month: MonthTag, platform: Platform) -> u32 {
        self.counts
            .get(&month)
            .and_then(|m| m.get(&platform))
            .copied()
            .unwrap_or(0)
    }

    /// Total liquidations per platform across all months.
    pub fn totals(&self) -> BTreeMap<Platform, u32> {
        let mut totals = BTreeMap::new();
        for by_platform in self.counts.values() {
            for (platform, count) in by_platform {
                *totals.entry(*platform).or_insert(0) += count;
            }
        }
        totals
    }
}

/// Compute Table 8 from the liquidation ledger.
pub fn table8(records: &[LiquidationRecord]) -> Table8 {
    let mut collector = ProfitVolumeCollector::default();
    for record in records {
        collector.observe_record(record);
    }
    collector.finish().0
}

/// Build the Figure 9 dataset: one [`ProfitVolumeRatio`] observation per
/// platform per month, with the DAI/ETH restriction on both numerator and
/// denominator.
pub fn figure9(
    records: &[LiquidationRecord],
    volume_samples: &[VolumeSample],
    time_map: &TimeMap,
) -> MechanismComparison {
    let mut collector = ProfitVolumeCollector::default();
    collector.set_time_map(*time_map);
    for record in records {
        collector.observe_record(record);
    }
    for sample in volume_samples {
        collector.observe_sample(sample);
    }
    collector.finish().1
}

/// Incremental §5.1 collector: folds DAI/ETH liquidation profits (numerator)
/// and collateral-volume samples (denominator) as they stream past, joining
/// them per platform-month at [`finish`](ProfitVolumeCollector::finish).
#[derive(Debug, Default)]
pub struct ProfitVolumeCollector {
    time_map: Option<TimeMap>,
    table8: Table8,
    profit: BTreeMap<(Platform, MonthTag), Wad>,
    counts: BTreeMap<(Platform, MonthTag), u32>,
    volume_sum: BTreeMap<(Platform, MonthTag), (Wad, u32)>,
}

impl ProfitVolumeCollector {
    /// An empty collector.
    pub fn new() -> Self {
        ProfitVolumeCollector::default()
    }

    pub(crate) fn set_time_map(&mut self, time_map: TimeMap) {
        self.time_map = Some(time_map);
    }

    /// Fold one settled liquidation (non-DAI/ETH records are ignored).
    pub fn observe_record(&mut self, record: &LiquidationRecord) {
        if !record.is_dai_eth() {
            return;
        }
        *self
            .table8
            .counts
            .entry(record.month)
            .or_default()
            .entry(record.platform)
            .or_insert(0) += 1;
        let key = (record.platform, record.month);
        let gross = record.gross_profit();
        if !gross.is_negative() {
            let entry = self.profit.entry(key).or_insert(Wad::ZERO);
            *entry = entry.saturating_add(gross.magnitude);
        }
        *self.counts.entry(key).or_insert(0) += 1;
    }

    /// Fold one collateral-volume sample.
    pub fn observe_sample(&mut self, sample: &VolumeSample) {
        let month = self
            .time_map
            .unwrap_or_else(TimeMap::paper_study_window)
            .month(sample.block);
        let entry = self
            .volume_sum
            .entry((sample.platform, month))
            .or_insert((Wad::ZERO, 0));
        entry.0 = entry.0.saturating_add(sample.dai_eth_collateral_usd);
        entry.1 += 1;
    }

    /// Join numerator and denominator into Table 8 and the Figure 9 dataset.
    pub fn finish(&self) -> (Table8, MechanismComparison) {
        let mut comparison = MechanismComparison::new();
        for (&(platform, month), &(sum, n)) in &self.volume_sum {
            if n == 0 {
                continue;
            }
            let average_volume = sum.checked_div_int(n as u128).unwrap_or(Wad::ZERO);
            let monthly_profit = self
                .profit
                .get(&(platform, month))
                .copied()
                .unwrap_or(Wad::ZERO);
            let liquidation_count = self.counts.get(&(platform, month)).copied().unwrap_or(0);
            comparison.push(ProfitVolumeRatio {
                month,
                platform,
                monthly_profit,
                average_collateral_volume: average_volume,
                liquidation_count,
            });
        }
        (self.table8.clone(), comparison)
    }
}

impl defi_sim::SimObserver for ProfitVolumeCollector {
    fn on_run_start(&mut self, run: &defi_sim::RunStart<'_>) {
        self.set_time_map(run.time_map);
    }

    fn on_liquidation(&mut self, liquidation: &defi_sim::LiquidationObservation<'_>) {
        if let Some(record) = crate::records::observed_record(self.time_map, liquidation) {
            self.observe_record(&record);
        }
    }

    fn on_volume_sample(&mut self, sample: &VolumeSample) {
        self.observe_sample(sample);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::LiquidationKind;
    use defi_types::{Address, Token};

    fn dai_eth_record(platform: Platform, month: (u32, u8), profit: u64) -> LiquidationRecord {
        LiquidationRecord {
            platform,
            kind: LiquidationKind::FixedSpread,
            liquidator: Address::from_seed(1),
            borrower: Address::from_seed(2),
            block: 10_000_000,
            month: MonthTag::new(month.0, month.1),
            debt_token: Token::DAI,
            collateral_token: Token::ETH,
            debt_repaid_usd: Wad::from_int(1_000),
            collateral_received_usd: Wad::from_int(1_000 + profit),
            gas_price: 50,
            gas_used: 500_000,
            fee_usd: Wad::from_int(10),
            used_flash_loan: false,
            auction_started_at: None,
            auction_last_bid_at: None,
            tend_bids: 0,
            dent_bids: 0,
        }
    }

    fn sample(platform: Platform, block: u64, dai_eth: u64) -> VolumeSample {
        VolumeSample {
            block,
            platform,
            total_collateral_usd: Wad::from_int(dai_eth * 2),
            dai_eth_collateral_usd: Wad::from_int(dai_eth),
            open_positions: 10,
        }
    }

    #[test]
    fn table8_counts_only_dai_eth_records() {
        let mut other = dai_eth_record(Platform::Compound, (2020, 3), 50);
        other.debt_token = Token::USDC;
        let records = vec![
            dai_eth_record(Platform::Compound, (2020, 3), 50),
            dai_eth_record(Platform::Compound, (2020, 3), 50),
            dai_eth_record(Platform::DyDx, (2020, 4), 50),
            other,
        ];
        let table = table8(&records);
        assert_eq!(table.count(MonthTag::new(2020, 3), Platform::Compound), 2);
        assert_eq!(table.count(MonthTag::new(2020, 4), Platform::DyDx), 1);
        assert_eq!(table.count(MonthTag::new(2020, 4), Platform::Compound), 0);
        assert_eq!(table.totals()[&Platform::Compound], 2);
    }

    #[test]
    fn figure9_ratio_reflects_close_factor_ordering() {
        let time_map = TimeMap::paper_study_window();
        // dYdX liquidations extract much more profit per unit of volume than
        // MakerDAO's auctions (the paper's main Figure 9 finding).
        let records = vec![
            dai_eth_record(Platform::DyDx, (2020, 6), 200),
            dai_eth_record(Platform::DyDx, (2020, 6), 200),
            dai_eth_record(Platform::MakerDao, (2020, 6), 20),
            dai_eth_record(Platform::MakerDao, (2020, 6), 20),
        ];
        // Same collateral volume on both platforms.
        let block = time_map.first_block_of_month(MonthTag::new(2020, 6)) + 1_000;
        let samples = vec![
            sample(Platform::DyDx, block, 1_000_000),
            sample(Platform::MakerDao, block, 1_000_000),
        ];
        let comparison = figure9(&records, &samples, &time_map);
        let ranking = comparison.ranking(1);
        assert_eq!(ranking.first().unwrap().0, Platform::MakerDao);
        assert_eq!(ranking.last().unwrap().0, Platform::DyDx);
        assert_eq!(
            comparison.auction_favours_borrowers_vs(Platform::DyDx, 1),
            Some(true)
        );
    }

    #[test]
    fn months_without_liquidations_still_have_volume_observations() {
        let time_map = TimeMap::paper_study_window();
        let block = time_map.first_block_of_month(MonthTag::new(2020, 8)) + 10;
        let samples = vec![sample(Platform::Compound, block, 500_000)];
        let comparison = figure9(&[], &samples, &time_map);
        assert_eq!(comparison.observations.len(), 1);
        assert_eq!(comparison.observations[0].liquidation_count, 0);
        assert_eq!(comparison.observations[0].monthly_profit, Wad::ZERO);
    }
}
