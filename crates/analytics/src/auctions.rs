//! MakerDAO auction statistics (§4.3.3, Figure 7).
//!
//! The paper reports: the split between auctions terminating in the tend vs.
//! the dent phase, the average number of bidders and bids per auction, the
//! auction duration distribution against the configured auction length / bid
//! duration (Figure 7), the delay of the first bid, and the interval between
//! bids.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use defi_chain::{AuctionPhase, Blockchain, ChainEvent};
use defi_types::{BlockNumber, TimeMap};

use crate::records::{LiquidationKind, LiquidationRecord};

/// Mean and standard deviation of a sample.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct MeanStd {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Number of samples.
    pub count: usize,
}

impl MeanStd {
    /// Compute from a slice of samples.
    pub fn from_samples(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return MeanStd::default();
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let variance =
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / samples.len() as f64;
        MeanStd {
            mean,
            std_dev: variance.sqrt(),
            count: samples.len(),
        }
    }
}

/// One point of Figure 7: an auction's duration in hours.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AuctionDurationPoint {
    /// Block at which the auction was finalised.
    pub block: BlockNumber,
    /// Duration from initiation to finalisation, in hours.
    pub duration_hours: f64,
}

/// The §4.3.3 statistics bundle.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AuctionStats {
    /// Number of auctions terminating in the tend phase.
    pub terminated_in_tend: u32,
    /// Number of auctions terminating in the dent phase.
    pub terminated_in_dent: u32,
    /// Average number of distinct bidders per auction.
    pub average_bidders: f64,
    /// Bids per auction (mean ± std).
    pub bids_per_auction: MeanStd,
    /// Tend bids per auction (mean ± std).
    pub tend_bids_per_auction: MeanStd,
    /// Dent bids per auction (mean ± std).
    pub dent_bids_per_auction: MeanStd,
    /// Auction duration in hours (mean ± std).
    pub duration_hours: MeanStd,
    /// Delay of the first bid after initiation, in minutes (mean ± std).
    pub first_bid_delay_minutes: MeanStd,
    /// Interval between consecutive bids, in minutes (mean ± std).
    pub bid_interval_minutes: MeanStd,
    /// Number of auctions with more than one bid.
    pub auctions_with_multiple_bids: u32,
    /// The Figure 7 duration series.
    pub durations: Vec<AuctionDurationPoint>,
}

/// Compute the auction statistics from the liquidation ledger and the raw bid
/// events in the chain log.
pub fn auction_stats(
    chain: &Blockchain,
    records: &[LiquidationRecord],
    time_map: &TimeMap,
) -> AuctionStats {
    let mut collector = AuctionCollector::default();
    collector.set_time_map(*time_map);
    for logged in chain.events().iter() {
        collector.observe_event(logged);
    }
    for record in records {
        collector.observe_record(record);
    }
    collector.finish()
}

/// Incremental §4.3.3 collector: folds finalised-auction records and raw
/// `AuctionStarted`/`AuctionBid` events as they stream past, computing the
/// mean/std aggregates once at [`finish`](AuctionCollector::finish).
#[derive(Debug, Default)]
pub struct AuctionCollector {
    time_map: Option<TimeMap>,
    terminated_in_tend: u32,
    terminated_in_dent: u32,
    bids_per_auction: Vec<f64>,
    tend_bids: Vec<f64>,
    dent_bids: Vec<f64>,
    durations_hours: Vec<f64>,
    durations: Vec<AuctionDurationPoint>,
    start_block: BTreeMap<u64, BlockNumber>,
    bids_by_auction: BTreeMap<u64, Vec<(BlockNumber, defi_types::Address)>>,
}

impl AuctionCollector {
    /// An empty collector.
    pub fn new() -> Self {
        AuctionCollector::default()
    }

    pub(crate) fn set_time_map(&mut self, time_map: TimeMap) {
        self.time_map = Some(time_map);
    }

    fn time_map(&self) -> TimeMap {
        self.time_map.unwrap_or_else(TimeMap::paper_study_window)
    }

    /// Fold one finalised-auction record (fixed-spread records are ignored).
    pub fn observe_record(&mut self, record: &LiquidationRecord) {
        match record.kind {
            LiquidationKind::Auction(AuctionPhase::Tend) => self.terminated_in_tend += 1,
            LiquidationKind::Auction(AuctionPhase::Dent) => self.terminated_in_dent += 1,
            LiquidationKind::FixedSpread => return,
        }
        self.bids_per_auction
            .push((record.tend_bids + record.dent_bids) as f64);
        self.tend_bids.push(record.tend_bids as f64);
        self.dent_bids.push(record.dent_bids as f64);
        let hours = self.time_map().hours_between(
            record.auction_started_at.unwrap_or(record.block),
            record.block,
        );
        self.durations_hours.push(hours);
        self.durations.push(AuctionDurationPoint {
            block: record.block,
            duration_hours: hours,
        });
    }

    /// Fold one raw chain event (only auction initiations and bids matter).
    pub fn observe_event(&mut self, logged: &defi_chain::LoggedEvent) {
        match &logged.event {
            ChainEvent::AuctionStarted { auction_id, .. } => {
                self.start_block.insert(*auction_id, logged.block);
            }
            ChainEvent::AuctionBid {
                auction_id, bidder, ..
            } => {
                self.bids_by_auction
                    .entry(*auction_id)
                    .or_default()
                    .push((logged.block, *bidder));
            }
            _ => {}
        }
    }

    /// Finalise the mean/std aggregates.
    pub fn finish(&self) -> AuctionStats {
        let time_map = self.time_map();
        let mut first_bid_delays = Vec::new();
        let mut bid_intervals = Vec::new();
        let mut bidder_counts = Vec::new();
        let mut auctions_with_multiple_bids = 0;
        for (auction_id, bids) in &self.bids_by_auction {
            let mut blocks: Vec<BlockNumber> = bids.iter().map(|(b, _)| *b).collect();
            blocks.sort_unstable();
            if bids.len() > 1 {
                auctions_with_multiple_bids += 1;
            }
            let bidders: std::collections::BTreeSet<_> = bids.iter().map(|(_, a)| *a).collect();
            bidder_counts.push(bidders.len() as f64);
            if let Some(start) = self.start_block.get(auction_id) {
                if let Some(first) = blocks.first() {
                    first_bid_delays.push(time_map.hours_between(*start, *first) * 60.0);
                }
            }
            for pair in blocks.windows(2) {
                bid_intervals.push(time_map.hours_between(pair[0], pair[1]) * 60.0);
            }
        }

        AuctionStats {
            terminated_in_tend: self.terminated_in_tend,
            terminated_in_dent: self.terminated_in_dent,
            average_bidders: if bidder_counts.is_empty() {
                0.0
            } else {
                bidder_counts.iter().sum::<f64>() / bidder_counts.len() as f64
            },
            bids_per_auction: MeanStd::from_samples(&self.bids_per_auction),
            tend_bids_per_auction: MeanStd::from_samples(&self.tend_bids),
            dent_bids_per_auction: MeanStd::from_samples(&self.dent_bids),
            duration_hours: MeanStd::from_samples(&self.durations_hours),
            first_bid_delay_minutes: MeanStd::from_samples(&first_bid_delays),
            bid_interval_minutes: MeanStd::from_samples(&bid_intervals),
            auctions_with_multiple_bids,
            durations: self.durations.clone(),
        }
    }
}

impl defi_sim::SimObserver for AuctionCollector {
    fn on_run_start(&mut self, run: &defi_sim::RunStart<'_>) {
        self.set_time_map(run.time_map);
    }

    fn on_event(&mut self, logged: &defi_chain::LoggedEvent) {
        self.observe_event(logged);
    }

    fn on_liquidation(&mut self, liquidation: &defi_sim::LiquidationObservation<'_>) {
        if let Some(record) = crate::records::observed_record(self.time_map, liquidation) {
            self.observe_record(&record);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use defi_types::{Address, MonthTag, Platform, Token, Wad};

    fn auction_record(
        block: BlockNumber,
        started_at: BlockNumber,
        phase: AuctionPhase,
        tend: u32,
        dent: u32,
    ) -> LiquidationRecord {
        LiquidationRecord {
            platform: Platform::MakerDao,
            kind: LiquidationKind::Auction(phase),
            liquidator: Address::from_seed(1),
            borrower: Address::from_seed(2),
            block,
            month: MonthTag::new(2020, 3),
            debt_token: Token::DAI,
            collateral_token: Token::ETH,
            debt_repaid_usd: Wad::from_int(1_000),
            collateral_received_usd: Wad::from_int(1_050),
            gas_price: 50,
            gas_used: 180_000,
            fee_usd: Wad::from_int(5),
            used_flash_loan: false,
            auction_started_at: Some(started_at),
            auction_last_bid_at: Some(block - 10),
            tend_bids: tend,
            dent_bids: dent,
        }
    }

    #[test]
    fn mean_std_basics() {
        let stats = MeanStd::from_samples(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((stats.mean - 5.0).abs() < 1e-9);
        assert!((stats.std_dev - 2.0).abs() < 1e-9);
        assert_eq!(MeanStd::from_samples(&[]).count, 0);
    }

    #[test]
    fn phase_split_and_durations() {
        let chain = Blockchain::default();
        let time_map = *chain.time_map();
        let records = vec![
            auction_record(7_501_440, 7_500_000, AuctionPhase::Tend, 2, 0),
            auction_record(7_502_000, 7_500_560, AuctionPhase::Dent, 1, 2),
        ];
        let stats = auction_stats(&chain, &records, &time_map);
        assert_eq!(stats.terminated_in_tend, 1);
        assert_eq!(stats.terminated_in_dent, 1);
        assert_eq!(stats.bids_per_auction.count, 2);
        assert!((stats.bids_per_auction.mean - 2.5).abs() < 1e-9);
        // 1,440 blocks ≈ 5.4 hours at the calibrated block time.
        assert!(stats.duration_hours.mean > 4.0 && stats.duration_hours.mean < 7.0);
        assert_eq!(stats.durations.len(), 2);
    }

    #[test]
    fn fixed_spread_records_are_ignored() {
        let chain = Blockchain::default();
        let time_map = *chain.time_map();
        let mut fixed = auction_record(7_501_000, 7_500_000, AuctionPhase::Tend, 0, 0);
        fixed.kind = LiquidationKind::FixedSpread;
        fixed.platform = Platform::Compound;
        let stats = auction_stats(&chain, &[fixed], &time_map);
        assert_eq!(stats.terminated_in_tend + stats.terminated_in_dent, 0);
        assert_eq!(stats.durations.len(), 0);
    }
}
