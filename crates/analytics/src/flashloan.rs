//! Flash-loan usage for liquidations (§4.4.4, Table 4).
//!
//! Table 4 groups the flash loans taken to fund liquidations by the platform
//! the liquidation settled on and the pool the loan came from, reporting
//! counts and the cumulative borrowed amount. In the event log, a flash loan
//! and the liquidation it funds share a transaction hash, which is how we
//! join them (the paper similarly "filter[s] the relevant events in the
//! liquidation transactions that apply to flash loans").

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use defi_chain::{Blockchain, ChainEvent};
use defi_types::{Platform, Wad};

/// One Table 4 row: flash loans from `flash_pool` funding liquidations on
/// `liquidation_platform`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FlashLoanUsageRow {
    /// Platform the liquidation settled on.
    pub liquidation_platform: Platform,
    /// Pool that provided the flash loan.
    pub flash_pool: Platform,
    /// Number of flash loans.
    pub count: u32,
    /// Cumulative amount borrowed (USD).
    pub cumulative_amount_usd: Wad,
}

/// The full Table 4.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table4 {
    /// Rows (one per observed platform × pool combination).
    pub rows: Vec<FlashLoanUsageRow>,
    /// Total number of flash loans used for liquidations.
    pub total_flash_loans: u32,
    /// Total amount flash-borrowed for liquidations (USD).
    pub total_amount_usd: Wad,
}

impl Table4 {
    /// The row for a given platform/pool combination.
    pub fn row(
        &self,
        liquidation_platform: Platform,
        flash_pool: Platform,
    ) -> Option<&FlashLoanUsageRow> {
        self.rows
            .iter()
            .find(|r| r.liquidation_platform == liquidation_platform && r.flash_pool == flash_pool)
    }
}

/// Compute Table 4 from the chain event log.
pub fn table4(chain: &Blockchain) -> Table4 {
    let mut collector = FlashLoanCollector::default();
    for logged in chain.events().iter() {
        collector.observe_event(logged);
    }
    collector.finish()
}

/// Incremental Table 4 collector: indexes flash loans and liquidations by
/// transaction hash as events stream past, joining them at
/// [`finish`](FlashLoanCollector::finish).
#[derive(Debug, Default)]
pub struct FlashLoanCollector {
    flash_by_tx: BTreeMap<defi_types::TxHash, Vec<(Platform, Wad)>>,
    liquidation_platform_by_tx: BTreeMap<defi_types::TxHash, Platform>,
}

impl FlashLoanCollector {
    /// An empty collector.
    pub fn new() -> Self {
        FlashLoanCollector::default()
    }

    /// Fold one raw chain event (only flash loans and liquidations matter).
    pub fn observe_event(&mut self, logged: &defi_chain::LoggedEvent) {
        match &logged.event {
            ChainEvent::FlashLoan {
                pool, amount_usd, ..
            } => {
                self.flash_by_tx
                    .entry(logged.tx_hash)
                    .or_default()
                    .push((*pool, *amount_usd));
            }
            ChainEvent::Liquidation(event) => {
                self.liquidation_platform_by_tx
                    .insert(logged.tx_hash, event.platform);
            }
            _ => {}
        }
    }

    /// Join flash loans with the liquidations sharing their transaction.
    pub fn finish(&self) -> Table4 {
        let mut aggregate: BTreeMap<(Platform, Platform), (u32, Wad)> = BTreeMap::new();
        let mut total = 0u32;
        let mut total_amount = Wad::ZERO;
        for (tx, loans) in &self.flash_by_tx {
            let Some(platform) = self.liquidation_platform_by_tx.get(tx) else {
                continue; // a flash loan not used for a liquidation
            };
            for (pool, amount) in loans {
                let entry = aggregate
                    .entry((*platform, *pool))
                    .or_insert((0, Wad::ZERO));
                entry.0 += 1;
                entry.1 = entry.1.saturating_add(*amount);
                total += 1;
                total_amount = total_amount.saturating_add(*amount);
            }
        }

        Table4 {
            rows: aggregate
                .into_iter()
                .map(|((liq, pool), (count, amount))| FlashLoanUsageRow {
                    liquidation_platform: liq,
                    flash_pool: pool,
                    count,
                    cumulative_amount_usd: amount,
                })
                .collect(),
            total_flash_loans: total,
            total_amount_usd: total_amount,
        }
    }
}

impl defi_sim::SimObserver for FlashLoanCollector {
    fn on_event(&mut self, logged: &defi_chain::LoggedEvent) {
        self.observe_event(logged);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use defi_chain::{ChainConfig, LiquidationEvent};
    use defi_types::{Address, Token};

    fn liquidation_event(platform: Platform) -> ChainEvent {
        ChainEvent::Liquidation(LiquidationEvent {
            platform,
            liquidator: Address::from_seed(1),
            borrower: Address::from_seed(2),
            debt_token: Token::DAI,
            debt_repaid: Wad::from_int(1_000),
            debt_repaid_usd: Wad::from_int(1_000),
            collateral_token: Token::ETH,
            collateral_seized: Wad::ONE,
            collateral_seized_usd: Wad::from_int(1_080),
            used_flash_loan: true,
        })
    }

    fn flash_event(pool: Platform, amount: u64) -> ChainEvent {
        ChainEvent::FlashLoan {
            pool,
            borrower: Address::from_seed(1),
            token: Token::DAI,
            amount: Wad::from_int(amount),
            amount_usd: Wad::from_int(amount),
            fee: Wad::ZERO,
        }
    }

    #[test]
    fn joins_flash_loans_with_liquidations_by_transaction() {
        let mut chain = Blockchain::new(ChainConfig::default());
        // Tx 1: Compound liquidation funded by a dYdX flash loan.
        chain.execute(Address::from_seed(1), 50, 900_000, "liq", |ctx| {
            ctx.events.push(flash_event(Platform::DyDx, 50_000));
            ctx.events.push(liquidation_event(Platform::Compound));
            Ok(())
        });
        // Tx 2: an unrelated flash loan (not a liquidation) — must be ignored.
        chain.execute(Address::from_seed(2), 50, 900_000, "arb", |ctx| {
            ctx.events.push(flash_event(Platform::AaveV2, 10_000));
            Ok(())
        });
        // Tx 3: Aave V1 liquidation funded by a dYdX flash loan.
        chain.execute(Address::from_seed(3), 50, 900_000, "liq", |ctx| {
            ctx.events.push(flash_event(Platform::DyDx, 25_000));
            ctx.events.push(liquidation_event(Platform::AaveV1));
            Ok(())
        });

        let table = table4(&chain);
        assert_eq!(table.total_flash_loans, 2);
        assert_eq!(table.total_amount_usd, Wad::from_int(75_000));
        let row = table.row(Platform::Compound, Platform::DyDx).unwrap();
        assert_eq!(row.count, 1);
        assert_eq!(row.cumulative_amount_usd, Wad::from_int(50_000));
        assert!(table.row(Platform::AaveV2, Platform::AaveV2).is_none());
    }

    #[test]
    fn empty_chain_produces_empty_table() {
        let chain = Blockchain::new(ChainConfig::default());
        let table = table4(&chain);
        assert!(table.rows.is_empty());
        assert_eq!(table.total_flash_loans, 0);
    }
}
