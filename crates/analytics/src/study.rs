//! One-call analysis of a full simulation run.
//!
//! [`StudyAnalysis::from_report`] computes every table and figure of the
//! paper's evaluation from a [`SimulationReport`], so the examples and the
//! benchmark harness only need a single entry point.

use serde::Serialize;

use defi_core::comparison::MechanismComparison;
use defi_sim::SimulationReport;
use defi_types::Token;

use crate::auctions::{auction_stats, AuctionStats};
use crate::bad_debt::{table2, Table2};
use crate::flashloan::{table4, Table4};
use crate::gas::{gas_competition, GasCompetition};
use crate::overall::{
    accumulative_collateral_sold, headline, monthly_profit, table1, top_liquidators,
    AccumulativePoint, HeadlineStats, Table1, TopLiquidators,
};
use crate::price_movement::{table7, Table7};
use crate::profit_volume::{figure9, table8, Table8};
use crate::records::{collect_records, LiquidationRecord};
use crate::sensitivity::{figure8, PlatformSensitivity};
use crate::stablecoin::{stablecoin_stability, StablecoinStability};
use crate::unprofitable::{table3, Table3};

/// Every artefact of the paper's evaluation, computed from one run.
#[derive(Debug, Serialize)]
pub struct StudyAnalysis {
    /// The unified liquidation ledger.
    pub records: Vec<LiquidationRecord>,
    /// §4.2 headline statistics.
    pub headline: HeadlineStats,
    /// Table 1.
    pub table1: Table1,
    /// §4.3.1 most active / most profitable liquidators.
    pub top_liquidators: Option<TopLiquidators>,
    /// Figure 4 series per platform.
    pub figure4: std::collections::BTreeMap<defi_types::Platform, Vec<AccumulativePoint>>,
    /// Figure 5: monthly profit per platform.
    pub figure5: std::collections::BTreeMap<
        defi_types::Platform,
        std::collections::BTreeMap<defi_types::MonthTag, defi_types::SignedWad>,
    >,
    /// Figure 6 / §4.3.2.
    pub gas: GasCompetition,
    /// Figure 7 / §4.3.3.
    pub auctions: AuctionStats,
    /// Table 2.
    pub table2: Table2,
    /// Table 3.
    pub table3: Table3,
    /// Table 4.
    pub table4: Table4,
    /// Figure 8 per platform.
    pub figure8: Vec<PlatformSensitivity>,
    /// §4.5.2 stablecoin stability.
    pub stablecoins: StablecoinStability,
    /// Figure 9 dataset.
    pub figure9: MechanismComparison,
    /// Table 8.
    pub table8: Table8,
    /// Table 7 (Appendix A).
    pub table7: Table7,
}

impl StudyAnalysis {
    /// Run the full measurement pipeline over a simulation report.
    pub fn from_report(report: &SimulationReport) -> Self {
        let time_map = *report.chain.time_map();
        let records = collect_records(&report.chain, &report.market_oracle);

        let stablecoins = stablecoin_stability(
            &report.market_oracle,
            &[Token::DAI, Token::USDC, Token::USDT],
            report.config.start_block,
            report.snapshot_block,
            report.config.tick_blocks,
            0.05,
        );

        StudyAnalysis {
            headline: headline(&records),
            table1: table1(&records),
            top_liquidators: top_liquidators(&records),
            figure4: accumulative_collateral_sold(&records),
            figure5: monthly_profit(&records),
            gas: gas_competition(&report.chain, &records, 6_000),
            auctions: auction_stats(&report.chain, &records, &time_map),
            table2: table2(&report.final_positions),
            table3: table3(&report.final_positions),
            table4: table4(&report.chain),
            figure8: figure8(&report.final_positions, 50),
            stablecoins,
            figure9: figure9(&records, &report.volume_samples, &time_map),
            table8: table8(&records),
            table7: table7(
                &records,
                &report.market_oracle,
                // The oracle history is tick-resolution; widen the paper's
                // 1,440-block window to at least four ticks so trajectories
                // contain enough samples to classify.
                1_440.max(4 * report.config.tick_blocks),
                report.config.tick_blocks,
            ),
            records,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use defi_sim::{SimConfig, SimulationEngine};
    use defi_types::Platform;

    #[test]
    fn full_pipeline_runs_on_a_smoke_scenario() {
        let report = SimulationEngine::new(SimConfig::smoke_test(11)).run();
        let analysis = StudyAnalysis::from_report(&report);

        // The ledger, Table 1 and the headline stats agree on the count.
        assert_eq!(
            analysis.headline.liquidation_count as usize,
            analysis.records.len()
        );
        assert_eq!(
            analysis.table1.total_liquidations,
            analysis.headline.liquidation_count
        );
        assert!(analysis.headline.liquidation_count > 0);

        // Gas competition: most liquidations bid above the average (the
        // paper's §4.3.2 observation).
        assert!(analysis.gas.share_above_average > 0.5);

        // The sensitivity sweep covers every platform with positions.
        assert_eq!(analysis.figure8.len(), report.final_positions.len());

        // Stablecoins stay within 5% of each other almost all the time.
        assert!(analysis.stablecoins.share_within_threshold > 0.9);

        // Table 7 classifies (almost) every liquidation.
        assert!(analysis.table7.total > 0);

        // The smoke window includes the March 2020 crash, so MakerDAO
        // auctions settle and show up.
        assert!(
            analysis
                .records
                .iter()
                .any(|r| r.platform == Platform::MakerDao),
            "expected MakerDAO auction liquidations in the crash window"
        );
    }
}
