//! One-call analysis of a full simulation run.
//!
//! Two equivalent pipelines produce the same [`StudyAnalysis`]:
//!
//! * **streaming** — [`StudyCollector`] is a
//!   [`SimObserver`](defi_sim::SimObserver) composing the incremental
//!   collectors of every module; attach it to a
//!   [`Session`](defi_sim::Session) (or call [`StudyAnalysis::stream`]) and
//!   the study computes in a single pass *during* the simulation;
//! * **batch** — [`StudyAnalysis::from_report`] re-scans a materialised
//!   [`SimulationReport`] after the fact (the legacy path, kept as the
//!   reference the streaming path is tested against).

use serde::Serialize;

use defi_core::comparison::MechanismComparison;
use defi_sim::{
    LiquidationObservation, MultiObserver, RunEnd, RunStart, SimError, SimObserver,
    SimulationEngine, SimulationReport, VolumeSample,
};
use defi_types::{TimeMap, Token};

use crate::auctions::{auction_stats, AuctionCollector, AuctionStats};
use crate::bad_debt::{table2, Table2};
use crate::flashloan::{table4, FlashLoanCollector, Table4};
use crate::gas::{gas_competition, GasCollector, GasCompetition, GAS_WINDOW_BLOCKS};
use crate::overall::{
    accumulative_collateral_sold, headline, monthly_profit, table1, top_liquidators,
    AccumulativePoint, HeadlineStats, OverallCollector, Table1, TopLiquidators,
};
use crate::price_movement::{table7, table7_window, Table7};
use crate::profit_volume::{figure9, table8, ProfitVolumeCollector, Table8};
use crate::records::{collect_records, observed_record, LiquidationRecord};
use crate::sensitivity::{figure8, PlatformSensitivity};
use crate::stablecoin::{stablecoin_stability, StablecoinStability};
use crate::unprofitable::{table3, Table3};

/// Sensitivity-sweep resolution of Figure 8.
const FIGURE8_STEPS: usize = 50;

/// Every artefact of the paper's evaluation, computed from one run.
#[derive(Debug, Serialize)]
pub struct StudyAnalysis {
    /// The unified liquidation ledger.
    pub records: Vec<LiquidationRecord>,
    /// §4.2 headline statistics.
    pub headline: HeadlineStats,
    /// Table 1.
    pub table1: Table1,
    /// §4.3.1 most active / most profitable liquidators.
    pub top_liquidators: Option<TopLiquidators>,
    /// Figure 4 series per platform.
    pub figure4: std::collections::BTreeMap<defi_types::Platform, Vec<AccumulativePoint>>,
    /// Figure 5: monthly profit per platform.
    pub figure5: std::collections::BTreeMap<
        defi_types::Platform,
        std::collections::BTreeMap<defi_types::MonthTag, defi_types::SignedWad>,
    >,
    /// Figure 6 / §4.3.2.
    pub gas: GasCompetition,
    /// Figure 7 / §4.3.3.
    pub auctions: AuctionStats,
    /// Table 2.
    pub table2: Table2,
    /// Table 3.
    pub table3: Table3,
    /// Table 4.
    pub table4: Table4,
    /// Figure 8 per platform.
    pub figure8: Vec<PlatformSensitivity>,
    /// §4.5.2 stablecoin stability.
    pub stablecoins: StablecoinStability,
    /// Figure 9 dataset.
    pub figure9: MechanismComparison,
    /// Table 8.
    pub table8: Table8,
    /// Table 7 (Appendix A).
    pub table7: Table7,
}

impl StudyAnalysis {
    /// Run the full measurement pipeline over a simulation report (the batch
    /// path: a post-hoc scan of `report.chain.events()`).
    pub fn from_report(report: &SimulationReport) -> Self {
        let time_map = *report.chain.time_map();
        let records = collect_records(&report.chain, &report.market_oracle);

        let stablecoins = stablecoin_stability(
            &report.market_oracle,
            &[Token::DAI, Token::USDC, Token::USDT],
            report.config.start_block,
            report.snapshot_block,
            report.config.tick_blocks,
            0.05,
        );

        StudyAnalysis {
            headline: headline(&records),
            table1: table1(&records),
            top_liquidators: top_liquidators(&records),
            figure4: accumulative_collateral_sold(&records),
            figure5: monthly_profit(&records),
            gas: gas_competition(&report.chain, &records, GAS_WINDOW_BLOCKS),
            auctions: auction_stats(&report.chain, &records, &time_map),
            table2: table2(&report.final_positions),
            table3: table3(&report.final_positions),
            table4: table4(&report.chain),
            figure8: figure8(&report.final_positions, FIGURE8_STEPS),
            stablecoins,
            figure9: figure9(&records, &report.volume_samples, &time_map),
            table8: table8(&records),
            table7: table7(
                &records,
                &report.market_oracle,
                table7_window(report.config.tick_blocks),
                report.config.tick_blocks,
            ),
            records,
        }
    }

    /// Stream a run through a [`StudyCollector`], computing the study in a
    /// single pass during the simulation. Returns the analysis together with
    /// the report.
    pub fn stream(engine: SimulationEngine) -> Result<(StudyAnalysis, SimulationReport), SimError> {
        let mut collector = StudyCollector::new();
        let report = engine.session().run_to_end(&mut collector)?;
        let analysis = collector
            .into_analysis()
            .expect("run_to_end dispatched on_run_end");
        Ok((analysis, report))
    }

    /// Replay-driven construction: `drive` feeds an already-recorded
    /// observation stream (e.g. a journal reader's `replay`) into a fresh
    /// [`StudyCollector`], and the finished analysis is returned — the same
    /// single-pass study [`stream`](StudyAnalysis::stream) computes live,
    /// with no simulation attached. Returns `Ok(None)` when the stream never
    /// reached `on_run_end` (an unfinished recording).
    pub fn from_replay<E>(
        drive: impl FnOnce(&mut dyn SimObserver) -> Result<(), E>,
    ) -> Result<Option<StudyAnalysis>, E> {
        let mut collector = StudyCollector::new();
        drive(&mut collector)?;
        Ok(collector.into_analysis())
    }

    /// Like [`stream`](StudyAnalysis::stream), with an additional observer
    /// attached to the same session — e.g. an
    /// [`InvariantObserver`](defi_sim::InvariantObserver) auditing the run
    /// the study is measuring.
    pub fn stream_with(
        engine: SimulationEngine,
        extra: &mut dyn SimObserver,
    ) -> Result<(StudyAnalysis, SimulationReport), SimError> {
        let mut collector = StudyCollector::new();
        let report = {
            let mut observers = MultiObserver::new().with(&mut collector).with(extra);
            engine.session().run_to_end(&mut observers)?
        };
        let analysis = collector
            .into_analysis()
            .expect("run_to_end dispatched on_run_end");
        Ok((analysis, report))
    }
}

/// The streaming counterpart of [`StudyAnalysis::from_report`]: composes the
/// per-module incremental collectors behind one [`SimObserver`], building
/// each liquidation record exactly once and fanning it out. Snapshot-bound
/// artefacts (Tables 2–3, Figure 8, stablecoins, Table 7) are measured in
/// `on_run_end` over the final state the session hands over.
#[derive(Debug, Default)]
pub struct StudyCollector {
    time_map: Option<TimeMap>,
    records: Vec<LiquidationRecord>,
    overall: OverallCollector,
    gas: GasCollector,
    auctions: AuctionCollector,
    flash_loans: FlashLoanCollector,
    profit_volume: ProfitVolumeCollector,
    analysis: Option<StudyAnalysis>,
}

impl StudyCollector {
    /// An empty collector (attach to a session before the first tick).
    pub fn new() -> Self {
        StudyCollector::default()
    }

    /// The ledger accumulated so far (live during the run).
    pub fn records(&self) -> &[LiquidationRecord] {
        &self.records
    }

    /// Consume the collector, returning the analysis built by `on_run_end`
    /// (`None` if the session never finished).
    pub fn into_analysis(self) -> Option<StudyAnalysis> {
        self.analysis
    }
}

impl SimObserver for StudyCollector {
    fn on_run_start(&mut self, run: &RunStart<'_>) {
        self.time_map = Some(run.time_map);
        self.overall.set_time_map(run.time_map);
        self.auctions.set_time_map(run.time_map);
        self.profit_volume.set_time_map(run.time_map);
    }

    fn on_event(&mut self, logged: &defi_chain::LoggedEvent) {
        self.flash_loans.observe_event(logged);
        self.auctions.observe_event(logged);
    }

    fn on_liquidation(&mut self, liquidation: &LiquidationObservation<'_>) {
        let Some(record) = observed_record(self.time_map, liquidation) else {
            return;
        };
        self.overall.observe_record(&record);
        self.gas.observe_record(&record);
        self.auctions.observe_record(&record);
        self.profit_volume.observe_record(&record);
        self.records.push(record);
    }

    fn on_volume_sample(&mut self, sample: &VolumeSample) {
        self.profit_volume.observe_sample(sample);
    }

    fn on_run_end(&mut self, end: &RunEnd<'_>) {
        let overall = std::mem::take(&mut self.overall).finish();
        let (table8, figure9) = self.profit_volume.finish();
        let records = std::mem::take(&mut self.records);
        self.analysis = Some(StudyAnalysis {
            headline: overall.headline,
            table1: overall.table1,
            top_liquidators: overall.top_liquidators,
            figure4: overall.figure4,
            figure5: overall.figure5,
            gas: self.gas.finish(end.chain),
            auctions: self.auctions.finish(),
            table2: table2(end.final_positions),
            table3: table3(end.final_positions),
            table4: self.flash_loans.finish(),
            figure8: figure8(end.final_positions, FIGURE8_STEPS),
            stablecoins: stablecoin_stability(
                end.market_oracle,
                &[Token::DAI, Token::USDC, Token::USDT],
                end.config.start_block,
                end.snapshot_block,
                end.config.tick_blocks,
                0.05,
            ),
            figure9,
            table8,
            table7: table7(
                &records,
                end.market_oracle,
                table7_window(end.config.tick_blocks),
                end.config.tick_blocks,
            ),
            records,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use defi_sim::{SimConfig, SimulationEngine};
    use defi_types::Platform;

    #[test]
    fn full_pipeline_runs_on_a_smoke_scenario() {
        let report = SimulationEngine::new(SimConfig::smoke_test(11)).run();
        let analysis = StudyAnalysis::from_report(&report);

        // The ledger, Table 1 and the headline stats agree on the count.
        assert_eq!(
            analysis.headline.liquidation_count as usize,
            analysis.records.len()
        );
        assert_eq!(
            analysis.table1.total_liquidations,
            analysis.headline.liquidation_count
        );
        assert!(analysis.headline.liquidation_count > 0);

        // Gas competition: most liquidations bid above the average (the
        // paper's §4.3.2 observation).
        assert!(analysis.gas.share_above_average > 0.5);

        // The sensitivity sweep covers every platform with positions.
        assert_eq!(analysis.figure8.len(), report.final_positions.len());

        // Stablecoins stay within 5% of each other almost all the time.
        assert!(analysis.stablecoins.share_within_threshold > 0.9);

        // Table 7 classifies (almost) every liquidation.
        assert!(analysis.table7.total > 0);

        // The smoke window includes the March 2020 crash, so MakerDAO
        // auctions settle and show up.
        assert!(
            analysis
                .records
                .iter()
                .any(|r| r.platform == Platform::MakerDao),
            "expected MakerDAO auction liquidations in the crash window"
        );
    }

    #[test]
    fn streaming_pipeline_matches_batch_counts() {
        let mut config = SimConfig::smoke_test(12);
        config.end_block = config.start_block + 60 * config.tick_blocks;
        let report = SimulationEngine::new(config.clone()).run();
        let batch = StudyAnalysis::from_report(&report);

        let (streamed, stream_report) =
            StudyAnalysis::stream(SimulationEngine::new(config)).unwrap();
        assert_eq!(
            report.chain.events().len(),
            stream_report.chain.events().len()
        );
        assert_eq!(batch.records.len(), streamed.records.len());
        assert_eq!(
            batch.headline.liquidation_count,
            streamed.headline.liquidation_count
        );
        assert_eq!(batch.headline.total_profit, streamed.headline.total_profit);
        assert_eq!(
            batch.table1.total_liquidators,
            streamed.table1.total_liquidators
        );
        assert_eq!(batch.gas.points.len(), streamed.gas.points.len());
        assert_eq!(
            batch.auctions.terminated_in_tend + batch.auctions.terminated_in_dent,
            streamed.auctions.terminated_in_tend + streamed.auctions.terminated_in_dent
        );
        assert_eq!(
            batch.table4.total_flash_loans,
            streamed.table4.total_flash_loans
        );
        assert_eq!(batch.table7.total, streamed.table7.total);
    }
}
