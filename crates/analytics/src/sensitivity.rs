//! Liquidation sensitivity per platform (§4.5.1, Figure 8).
//!
//! Figure 8 shows, for each platform and each collateral asset, the
//! liquidatable collateral volume as a function of a 0–100 % price decline of
//! that asset (Algorithm 1). This module sweeps every collateral asset that
//! appears in a platform's snapshot position book.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use defi_core::position::Position;
use defi_core::sensitivity::SensitivityCurve;
use defi_types::{Platform, Token, Wad};

/// Figure 8 for one platform: one curve per collateral asset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlatformSensitivity {
    /// Platform.
    pub platform: Platform,
    /// One sensitivity curve per collateral asset present in the book.
    pub curves: Vec<SensitivityCurve>,
}

impl PlatformSensitivity {
    /// The curve for a specific token.
    pub fn curve(&self, token: Token) -> Option<&SensitivityCurve> {
        self.curves.iter().find(|c| c.token == token)
    }

    /// The token whose decline liquidates the most collateral (at any decline
    /// level) — ETH for every platform in the paper.
    pub fn most_sensitive_token(&self) -> Option<Token> {
        self.curves.iter().max_by_key(|c| c.max()).map(|c| c.token)
    }

    /// Liquidatable collateral for a given token at a given decline.
    pub fn liquidatable_at(&self, token: Token, decline: f64) -> Wad {
        self.curve(token)
            .map(|c| c.at(decline))
            .unwrap_or(Wad::ZERO)
    }
}

/// Compute Figure 8 for every platform's snapshot position book.
pub fn figure8(
    positions_by_platform: &BTreeMap<Platform, Vec<Position>>,
    steps: usize,
) -> Vec<PlatformSensitivity> {
    positions_by_platform
        .iter()
        .map(|(platform, positions)| {
            // The asset universe is whatever appears as collateral in the book.
            let mut tokens: Vec<Token> = positions
                .iter()
                .flat_map(|p| p.collateral.iter().map(|c| c.token))
                .collect();
            tokens.sort();
            tokens.dedup();
            let curves = tokens
                .into_iter()
                .map(|token| SensitivityCurve::compute(positions, token, steps))
                .collect();
            PlatformSensitivity {
                platform: *platform,
                curves,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use defi_core::position::{CollateralHolding, DebtHolding};
    use defi_types::Address;

    fn eth_book(count: u64) -> Vec<Position> {
        (1..=count)
            .map(|i| {
                Position::new(Address::from_seed(i))
                    .with_collateral(CollateralHolding {
                        token: Token::ETH,
                        amount: Wad::from_int(10),
                        value_usd: Wad::from_int(20_000),
                        liquidation_threshold: Wad::from_f64(0.8),
                        liquidation_spread: Wad::from_f64(0.05),
                    })
                    .with_debt(DebtHolding {
                        token: Token::DAI,
                        amount: Wad::from_int(10_000 + i * 200),
                        value_usd: Wad::from_int(10_000 + i * 200),
                    })
            })
            .collect()
    }

    #[test]
    fn figure8_produces_one_curve_per_collateral_asset() {
        let mut books = BTreeMap::new();
        books.insert(Platform::Compound, eth_book(10));
        let sensitivity = figure8(&books, 20);
        assert_eq!(sensitivity.len(), 1);
        let compound = &sensitivity[0];
        assert_eq!(compound.curves.len(), 1);
        assert_eq!(compound.most_sensitive_token(), Some(Token::ETH));
        // A 43% ETH decline liquidates a large share of the ETH-collateral book.
        let hit = compound.liquidatable_at(Token::ETH, 0.43);
        assert!(
            hit > Wad::from_int(50_000),
            "expected a large liquidatable volume, got {hit}"
        );
        // An asset not in the book has no curve.
        assert!(compound.curve(Token::WBTC).is_none());
    }

    #[test]
    fn diversified_books_are_less_sensitive() {
        // Same aggregate collateral/debt, but half the collateral is a
        // stablecoin: the liquidatable volume at a 40% ETH decline must be
        // smaller than in the concentrated book (the paper's Aave V2 vs
        // Compound observation).
        let concentrated = eth_book(10);
        let diversified: Vec<Position> = (1..=10u64)
            .map(|i| {
                Position::new(Address::from_seed(100 + i))
                    .with_collateral(CollateralHolding {
                        token: Token::ETH,
                        amount: Wad::from_int(5),
                        value_usd: Wad::from_int(10_000),
                        liquidation_threshold: Wad::from_f64(0.8),
                        liquidation_spread: Wad::from_f64(0.05),
                    })
                    .with_collateral(CollateralHolding {
                        token: Token::USDC,
                        amount: Wad::from_int(10_000),
                        value_usd: Wad::from_int(10_000),
                        liquidation_threshold: Wad::from_f64(0.8),
                        liquidation_spread: Wad::from_f64(0.05),
                    })
                    .with_debt(DebtHolding {
                        token: Token::DAI,
                        amount: Wad::from_int(10_000 + i * 200),
                        value_usd: Wad::from_int(10_000 + i * 200),
                    })
            })
            .collect();
        let mut books = BTreeMap::new();
        books.insert(Platform::Compound, concentrated);
        books.insert(Platform::AaveV2, diversified);
        let sensitivity = figure8(&books, 25);
        let compound = sensitivity
            .iter()
            .find(|s| s.platform == Platform::Compound)
            .unwrap();
        let aave = sensitivity
            .iter()
            .find(|s| s.platform == Platform::AaveV2)
            .unwrap();
        let decline = 0.40;
        assert!(
            aave.liquidatable_at(Token::ETH, decline)
                < compound.liquidatable_at(Token::ETH, decline),
            "diversified book should be less sensitive"
        );
    }
}
