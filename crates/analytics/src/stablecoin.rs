//! Stablecoin-pair stability (§4.5.2).
//!
//! The paper samples the Chainlink prices of DAI, USDC and USDT over one year
//! of blocks and reports that the pairwise price differences stay within 5 %
//! for 99.97 % of blocks, with a maximum deviation of 11.1 %. This module
//! computes the same statistics from an oracle's price history.

use serde::{Deserialize, Serialize};

use defi_oracle::PriceOracle;
use defi_types::{BlockNumber, Token};

/// Stablecoin stability statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StablecoinStability {
    /// Tokens compared.
    pub tokens: Vec<Token>,
    /// Number of sampled blocks.
    pub sampled_blocks: u64,
    /// Share of sampled blocks where every pairwise relative difference is
    /// below `threshold` (0–1).
    pub share_within_threshold: f64,
    /// The threshold used (e.g. 0.05 for the paper's 5 %).
    pub threshold: f64,
    /// Maximum pairwise relative difference observed.
    pub max_difference: f64,
    /// Block at which the maximum difference occurred.
    pub max_difference_block: BlockNumber,
}

/// Measure pairwise stablecoin price stability over `[from, to]`, sampling
/// every `step` blocks.
pub fn stablecoin_stability(
    oracle: &PriceOracle,
    tokens: &[Token],
    from: BlockNumber,
    to: BlockNumber,
    step: u64,
    threshold: f64,
) -> StablecoinStability {
    let mut sampled = 0u64;
    let mut within = 0u64;
    let mut max_difference = 0.0f64;
    let mut max_block = from;
    let mut block = from;
    while block <= to {
        let prices: Vec<f64> = tokens
            .iter()
            .filter_map(|t| oracle.price_at(block, *t))
            .map(|p| p.to_f64())
            .collect();
        if prices.len() == tokens.len() && !prices.is_empty() {
            sampled += 1;
            let mut worst: f64 = 0.0;
            for i in 0..prices.len() {
                for j in (i + 1)..prices.len() {
                    let low = prices[i].min(prices[j]);
                    let high = prices[i].max(prices[j]);
                    if low > 0.0 {
                        worst = worst.max((high - low) / low);
                    }
                }
            }
            if worst < threshold {
                within += 1;
            }
            if worst > max_difference {
                max_difference = worst;
                max_block = block;
            }
        }
        block += step.max(1);
    }
    StablecoinStability {
        tokens: tokens.to_vec(),
        sampled_blocks: sampled,
        share_within_threshold: if sampled == 0 {
            0.0
        } else {
            within as f64 / sampled as f64
        },
        threshold,
        max_difference,
        max_difference_block: max_block,
    }
}

/// Observer wrapper around [`stablecoin_stability`]: the statistic scans the
/// (tick-resolution) market price history, so it runs once in `on_run_end`
/// over the window the configuration defines.
#[derive(Debug)]
pub struct StablecoinCollector {
    tokens: Vec<Token>,
    threshold: f64,
    stats: Option<StablecoinStability>,
}

impl StablecoinCollector {
    /// A collector comparing `tokens` with the given pairwise threshold.
    pub fn new(tokens: Vec<Token>, threshold: f64) -> Self {
        StablecoinCollector {
            tokens,
            threshold,
            stats: None,
        }
    }

    /// The measured statistics (available after the run ended).
    pub fn stats(&self) -> Option<&StablecoinStability> {
        self.stats.as_ref()
    }

    /// Consume the collector, returning the statistics.
    pub fn into_stats(self) -> Option<StablecoinStability> {
        self.stats
    }
}

impl Default for StablecoinCollector {
    /// The paper's setup: DAI/USDC/USDT within 5 %.
    fn default() -> Self {
        StablecoinCollector::new(vec![Token::DAI, Token::USDC, Token::USDT], 0.05)
    }
}

impl defi_sim::SimObserver for StablecoinCollector {
    fn on_run_end(&mut self, end: &defi_sim::RunEnd<'_>) {
        self.stats = Some(stablecoin_stability(
            end.market_oracle,
            &self.tokens,
            end.config.start_block,
            end.snapshot_block,
            end.config.tick_blocks,
            self.threshold,
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use defi_oracle::OracleConfig;
    use defi_types::Wad;

    #[test]
    fn stable_prices_stay_within_threshold() {
        let mut oracle = PriceOracle::new(OracleConfig::every_update());
        for block in (0..10_000u64).step_by(100) {
            oracle.set_price(
                block,
                Token::DAI,
                Wad::from_f64(1.0 + (block as f64 * 1e-7)),
            );
            oracle.set_price(block, Token::USDC, Wad::from_f64(1.0));
            oracle.set_price(block, Token::USDT, Wad::from_f64(0.999));
        }
        let stats = stablecoin_stability(
            &oracle,
            &[Token::DAI, Token::USDC, Token::USDT],
            0,
            9_900,
            100,
            0.05,
        );
        assert_eq!(stats.sampled_blocks, 100);
        assert!((stats.share_within_threshold - 1.0).abs() < 1e-9);
        assert!(stats.max_difference < 0.01);
    }

    #[test]
    fn depeg_episode_is_detected() {
        let mut oracle = PriceOracle::new(OracleConfig::every_update());
        for block in (0..1_000u64).step_by(10) {
            let dai = if block == 500 { 1.11 } else { 1.0 };
            oracle.set_price(block, Token::DAI, Wad::from_f64(dai));
            oracle.set_price(block, Token::USDC, Wad::from_f64(1.0));
        }
        let stats = stablecoin_stability(&oracle, &[Token::DAI, Token::USDC], 0, 990, 10, 0.05);
        assert!(stats.max_difference > 0.10);
        assert_eq!(stats.max_difference_block, 500);
        assert!(stats.share_within_threshold < 1.0 && stats.share_within_threshold > 0.95);
    }

    #[test]
    fn missing_prices_are_skipped() {
        let oracle = PriceOracle::new(OracleConfig::every_update());
        let stats = stablecoin_stability(&oracle, &[Token::DAI, Token::USDC], 0, 100, 10, 0.05);
        assert_eq!(stats.sampled_blocks, 0);
        assert_eq!(stats.share_within_threshold, 0.0);
    }
}
