//! Post-liquidation collateral price movements (Appendix A, Table 7).
//!
//! For every liquidation the paper tracks the block-by-block oracle price of
//! the collateral (relative to the liquidation price) for 1,440 blocks
//! (~6 hours) and classifies the trajectory into seven patterns. The share of
//! liquidations whose price ends below the liquidation price bounds the risk
//! an *auction* liquidator would have borne (19.07 % in the paper).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use defi_oracle::PriceOracle;
use defi_types::Wad;

use crate::records::LiquidationRecord;

/// The post-liquidation price-movement patterns of Table 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum PriceMovement {
    /// The collateral price does not change during the window.
    Horizontal,
    /// The price stays above the liquidation price for the whole window.
    Rise,
    /// The price stays below the liquidation price for the whole window.
    Fall,
    /// The price first rises above, then falls below (one sign change).
    RiseFall,
    /// The price first falls below, then rises above (one sign change).
    FallRise,
    /// First move up, then more than two crossings.
    RiseFluctuation,
    /// First move down, then more than two crossings.
    FallFluctuation,
}

/// Per-pattern aggregate, mirroring a Table 7 row.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct MovementRow {
    /// Number of liquidations in this pattern.
    pub liquidations: u32,
    /// Mean maximum price relative to the liquidation price (e.g. +0.07 = +7 %).
    pub mean_max_excursion: f64,
    /// Mean minimum price relative to the liquidation price (negative).
    pub mean_min_excursion: f64,
}

/// Table 7 plus the Appendix A headline share.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Table7 {
    /// One row per pattern.
    pub rows: BTreeMap<PriceMovement, MovementRow>,
    /// Number of liquidations classified.
    pub total: u32,
    /// Share of liquidations whose collateral price is below the liquidation
    /// price at the end of the observation window (the auction-liquidator
    /// loss exposure).
    pub share_ending_below: f64,
}

/// Classify one trajectory of relative deviations (price / liquidation price − 1).
fn classify(deviations: &[f64]) -> PriceMovement {
    const EPS: f64 = 1e-6;
    let signs: Vec<i8> = deviations
        .iter()
        .map(|d| {
            if *d > EPS {
                1
            } else if *d < -EPS {
                -1
            } else {
                0
            }
        })
        .collect();
    let nonzero: Vec<i8> = signs.iter().copied().filter(|s| *s != 0).collect();
    if nonzero.is_empty() {
        return PriceMovement::Horizontal;
    }
    // Count sign changes in the non-zero subsequence.
    let mut changes = 0;
    for pair in nonzero.windows(2) {
        if pair[0] != pair[1] {
            changes += 1;
        }
    }
    let first = nonzero[0];
    match (first, changes) {
        (1, 0) => PriceMovement::Rise,
        (-1, 0) => PriceMovement::Fall,
        (1, 1) => PriceMovement::RiseFall,
        (-1, 1) => PriceMovement::FallRise,
        (1, _) => PriceMovement::RiseFluctuation,
        (-1, _) => PriceMovement::FallFluctuation,
        _ => PriceMovement::Horizontal,
    }
}

/// Compute Table 7 from the liquidation ledger and the market price history.
///
/// `window_blocks` is 1,440 in the paper; `sample_step` controls how densely
/// the window is sampled (the simulation's oracle history is tick-resolution,
/// so sampling every tick is sufficient).
pub fn table7(
    records: &[LiquidationRecord],
    market_oracle: &PriceOracle,
    window_blocks: u64,
    sample_step: u64,
) -> Table7 {
    let mut table = Table7::default();
    let mut ending_below = 0u32;
    let mut aggregates: BTreeMap<PriceMovement, (u32, f64, f64)> = BTreeMap::new();

    for record in records {
        let Some(liq_price) = market_oracle.price_at(record.block, record.collateral_token) else {
            continue;
        };
        if liq_price.is_zero() {
            continue;
        }
        let mut deviations = Vec::new();
        let mut block = record.block + sample_step.max(1);
        let end = record.block + window_blocks;
        let mut last_price = liq_price;
        while block <= end {
            if let Some(price) = market_oracle.price_at(block, record.collateral_token) {
                deviations.push(relative(price, liq_price));
                last_price = price;
            }
            block += sample_step.max(1);
        }
        if deviations.is_empty() {
            continue;
        }
        let pattern = classify(&deviations);
        let max_excursion = deviations.iter().copied().fold(f64::MIN, f64::max).max(0.0);
        let min_excursion = deviations.iter().copied().fold(f64::MAX, f64::min).min(0.0);
        let entry = aggregates.entry(pattern).or_insert((0, 0.0, 0.0));
        entry.0 += 1;
        entry.1 += max_excursion;
        entry.2 += min_excursion;
        table.total += 1;
        if relative(last_price, liq_price) < 0.0 {
            ending_below += 1;
        }
    }

    for (pattern, (count, max_sum, min_sum)) in aggregates {
        table.rows.insert(
            pattern,
            MovementRow {
                liquidations: count,
                mean_max_excursion: if count > 0 {
                    max_sum / count as f64
                } else {
                    0.0
                },
                mean_min_excursion: if count > 0 {
                    min_sum / count as f64
                } else {
                    0.0
                },
            },
        );
    }
    table.share_ending_below = if table.total > 0 {
        ending_below as f64 / table.total as f64
    } else {
        0.0
    };
    table
}

fn relative(price: Wad, reference: Wad) -> f64 {
    (price.to_f64() - reference.to_f64()) / reference.to_f64().max(1e-12)
}

/// Expose the classifier for property tests and the bench harness.
pub fn classify_deviations(deviations: &[f64]) -> PriceMovement {
    classify(deviations)
}

/// The Table 7 observation window for a given tick resolution: the oracle
/// history is tick-resolution, so the paper's 1,440-block window is widened
/// to at least four ticks so trajectories contain enough samples to classify.
pub fn table7_window(tick_blocks: u64) -> u64 {
    1_440.max(4 * tick_blocks)
}

/// Observer collecting the liquidation ledger in-stream and classifying the
/// post-liquidation trajectories in `on_run_end` — each record's observation
/// window extends *past* its settlement block, so the classification can
/// only happen once the price history is complete.
#[derive(Debug, Default)]
pub struct PriceMovementCollector {
    time_map: Option<defi_types::TimeMap>,
    records: Vec<LiquidationRecord>,
    table: Option<Table7>,
}

impl PriceMovementCollector {
    /// An empty collector.
    pub fn new() -> Self {
        PriceMovementCollector::default()
    }

    /// The measured table (available after the run ended).
    pub fn table(&self) -> Option<&Table7> {
        self.table.as_ref()
    }

    /// Consume the collector, returning the table.
    pub fn into_table(self) -> Option<Table7> {
        self.table
    }
}

impl defi_sim::SimObserver for PriceMovementCollector {
    fn on_run_start(&mut self, run: &defi_sim::RunStart<'_>) {
        self.time_map = Some(run.time_map);
    }

    fn on_liquidation(&mut self, liquidation: &defi_sim::LiquidationObservation<'_>) {
        if let Some(record) = crate::records::observed_record(self.time_map, liquidation) {
            self.records.push(record);
        }
    }

    fn on_run_end(&mut self, end: &defi_sim::RunEnd<'_>) {
        self.table = Some(table7(
            &self.records,
            end.market_oracle,
            table7_window(end.config.tick_blocks),
            end.config.tick_blocks,
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::LiquidationKind;
    use defi_oracle::OracleConfig;
    use defi_types::{Address, BlockNumber, MonthTag, Platform, Token};

    #[test]
    fn classification_patterns() {
        assert_eq!(classify_deviations(&[0.0, 0.0]), PriceMovement::Horizontal);
        assert_eq!(
            classify_deviations(&[0.01, 0.02, 0.03]),
            PriceMovement::Rise
        );
        assert_eq!(classify_deviations(&[-0.01, -0.05]), PriceMovement::Fall);
        assert_eq!(classify_deviations(&[0.02, -0.02]), PriceMovement::RiseFall);
        assert_eq!(classify_deviations(&[-0.02, 0.02]), PriceMovement::FallRise);
        assert_eq!(
            classify_deviations(&[0.02, -0.02, 0.02, -0.02]),
            PriceMovement::RiseFluctuation
        );
        assert_eq!(
            classify_deviations(&[-0.02, 0.02, -0.02, 0.02]),
            PriceMovement::FallFluctuation
        );
    }

    fn record_at(block: BlockNumber) -> LiquidationRecord {
        LiquidationRecord {
            platform: Platform::Compound,
            kind: LiquidationKind::FixedSpread,
            liquidator: Address::from_seed(1),
            borrower: Address::from_seed(2),
            block,
            month: MonthTag::new(2020, 5),
            debt_token: Token::DAI,
            collateral_token: Token::ETH,
            debt_repaid_usd: Wad::from_int(1_000),
            collateral_received_usd: Wad::from_int(1_080),
            gas_price: 50,
            gas_used: 500_000,
            fee_usd: Wad::from_int(10),
            used_flash_loan: false,
            auction_started_at: None,
            auction_last_bid_at: None,
            tend_bids: 0,
            dent_bids: 0,
        }
    }

    #[test]
    fn table7_classifies_and_reports_ending_share() {
        let mut oracle = PriceOracle::new(OracleConfig::every_update());
        // Price 100 at liquidation, falls to 90 and stays there.
        oracle.set_price(1_000, Token::ETH, Wad::from_int(100));
        oracle.set_price(1_100, Token::ETH, Wad::from_int(90));
        // Second liquidation at block 5,000 with a rising price afterwards.
        oracle.set_price(5_000, Token::ETH, Wad::from_int(100));
        oracle.set_price(5_100, Token::ETH, Wad::from_int(110));

        let records = vec![record_at(1_000), record_at(5_000)];
        let table = table7(&records, &oracle, 1_440, 100);
        assert_eq!(table.total, 2);
        assert_eq!(table.rows[&PriceMovement::Fall].liquidations, 1);
        assert_eq!(table.rows[&PriceMovement::Rise].liquidations, 1);
        assert!((table.share_ending_below - 0.5).abs() < 1e-9);
        assert!(table.rows[&PriceMovement::Fall].mean_min_excursion < -0.05);
        assert!(table.rows[&PriceMovement::Rise].mean_max_excursion > 0.05);
    }

    #[test]
    fn missing_price_history_is_skipped() {
        let oracle = PriceOracle::new(OracleConfig::every_update());
        let table = table7(&[record_at(1_000)], &oracle, 1_440, 100);
        assert_eq!(table.total, 0);
    }
}
