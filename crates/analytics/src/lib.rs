//! # defi-analytics
//!
//! The measurement pipeline of the reproduction: everything §4 and §5 of the
//! paper compute from their archive-node crawl, computed here from the
//! simulation's observable surface (event log, per-platform oracles, gas
//! history, position books, volume samples).
//!
//! | Module | Paper artefact |
//! |---|---|
//! | [`records`] | the unified liquidation ledger every other metric consumes |
//! | [`overall`] | §4.2 overall statistics, Table 1, Figure 4, Figure 5 |
//! | [`gas`] | §4.3.2 liquidator gas-price competition, Figure 6 |
//! | [`auctions`] | §4.3.3 auction statistics, Figure 7 |
//! | [`bad_debt`] | §4.4.2 Type I/II bad debts, Table 2 |
//! | [`unprofitable`] | §4.4.3 unprofitable liquidation opportunities, Table 3 |
//! | [`flashloan`] | §4.4.4 flash-loan usage, Table 4 |
//! | [`sensitivity`] | §4.5.1 liquidation sensitivity, Figure 8 |
//! | [`stablecoin`] | §4.5.2 stablecoin-pair stability |
//! | [`profit_volume`] | §5.1 profit–volume comparison, Figure 9, Table 8 |
//! | [`price_movement`] | Appendix A post-liquidation price movements, Table 7 |
//! | [`study`] | one-call [`StudyAnalysis`] bundling all of the above |
//!
//! Each module ships two equivalent faces: pure batch functions over the
//! ledger/report, and an incremental *collector* implementing
//! [`SimObserver`](defi_sim::SimObserver) so the same artefact computes in a
//! single pass while the simulation streams. [`StudyCollector`] composes the
//! streaming collectors (building each record once and fanning it out) and
//! measures the snapshot-bound artefacts at run end.

#![forbid(unsafe_code)]

pub mod auctions;
pub mod bad_debt;
pub mod flashloan;
pub mod gas;
pub mod overall;
pub mod price_movement;
pub mod profit_volume;
pub mod records;
pub mod sensitivity;
pub mod stablecoin;
pub mod study;
pub mod unprofitable;

pub use auctions::AuctionCollector;
pub use bad_debt::BadDebtCollector;
pub use flashloan::FlashLoanCollector;
pub use gas::GasCollector;
pub use overall::{OverallArtifacts, OverallCollector};
pub use price_movement::PriceMovementCollector;
pub use profit_volume::ProfitVolumeCollector;
pub use records::{LiquidationKind, LiquidationRecord, RecordsCollector};
pub use stablecoin::StablecoinCollector;
pub use study::{StudyAnalysis, StudyCollector};
pub use unprofitable::UnprofitableCollector;
