//! Liquidator gas-price competition (§4.3.2, Figure 6).
//!
//! Figure 6 plots the gas price of every fixed-spread liquidation transaction
//! against the 6,000-block moving average of the block-median gas price, and
//! the paper's headline statistic is that 73.97 % of liquidations pay an
//! above-average fee — evidence of competition between liquidators.

use serde::{Deserialize, Serialize};

use defi_chain::{Blockchain, GweiPrice};
use defi_types::{BlockNumber, Platform};

use crate::records::{LiquidationKind, LiquidationRecord};

/// One scatter point of Figure 6.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct GasPoint {
    /// Block of the liquidation.
    pub block: BlockNumber,
    /// Platform.
    pub platform: Platform,
    /// Gas price paid by the liquidator (gwei).
    pub gas_price: GweiPrice,
    /// Moving-average gas price at that block (gwei).
    pub average_gas_price: f64,
    /// Whether the liquidation paid more than the prevailing average.
    pub above_average: bool,
}

/// Figure 6 data plus the §4.3.2 headline share.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GasCompetition {
    /// Scatter points (fixed-spread liquidations only, as in the figure).
    pub points: Vec<GasPoint>,
    /// The moving-average reference series sampled from the block headers.
    pub average_series: Vec<(BlockNumber, f64)>,
    /// Share of liquidations paying an above-average gas price (0–1).
    pub share_above_average: f64,
}

/// Build the moving average of block-median gas prices from the recorded
/// headers, with the given window in blocks.
fn moving_average_series(chain: &Blockchain, window_blocks: u64) -> Vec<(BlockNumber, f64)> {
    let headers = chain.headers();
    let mut series = Vec::with_capacity(headers.len());
    let mut buffer: Vec<(BlockNumber, f64)> = Vec::new();
    let mut sum = 0.0;
    for header in headers {
        buffer.push((header.number, header.median_gas_price as f64));
        sum += header.median_gas_price as f64;
        while let Some(&(oldest, value)) = buffer.first() {
            if header.number.saturating_sub(oldest) > window_blocks {
                sum -= value;
                buffer.remove(0);
            } else {
                break;
            }
        }
        series.push((header.number, sum / buffer.len() as f64));
    }
    series
}

fn average_at(series: &[(BlockNumber, f64)], block: BlockNumber) -> f64 {
    match series.binary_search_by_key(&block, |(b, _)| *b) {
        Ok(idx) => series[idx].1,
        Err(0) => series.first().map(|(_, v)| *v).unwrap_or(0.0),
        Err(idx) => series[idx - 1].1,
    }
}

/// Core of the Figure 6 computation, shared by the batch function and the
/// streaming collector: join raw liquidation gas bids against the header
/// moving average.
fn competition_from_bids(
    chain: &Blockchain,
    bids: &[(BlockNumber, Platform, GweiPrice)],
    window_blocks: u64,
) -> GasCompetition {
    let average_series = moving_average_series(chain, window_blocks);
    let mut points = Vec::new();
    let mut above = 0usize;
    for &(block, platform, gas_price) in bids {
        let average = average_at(&average_series, block);
        let above_average = (gas_price as f64) > average;
        if above_average {
            above += 1;
        }
        points.push(GasPoint {
            block,
            platform,
            gas_price,
            average_gas_price: average,
            above_average,
        });
    }
    let share = if points.is_empty() {
        0.0
    } else {
        above as f64 / points.len() as f64
    };
    GasCompetition {
        points,
        average_series,
        share_above_average: share,
    }
}

/// Compute the Figure 6 dataset. Only fixed-spread liquidations are included
/// (the figure covers Aave, Compound and dYdX).
pub fn gas_competition(
    chain: &Blockchain,
    records: &[LiquidationRecord],
    window_blocks: u64,
) -> GasCompetition {
    let bids: Vec<(BlockNumber, Platform, GweiPrice)> = records
        .iter()
        .filter(|r| r.kind == LiquidationKind::FixedSpread)
        .map(|r| (r.block, r.platform, r.gas_price))
        .collect();
    competition_from_bids(chain, &bids, window_blocks)
}

/// The paper's moving-average window (blocks) for the Figure 6 comparison.
pub const GAS_WINDOW_BLOCKS: u64 = 6_000;

/// Incremental Figure 6 collector: buffers each fixed-spread liquidation's
/// gas bid as it settles, then joins against the header moving average once
/// the run's headers are complete. The per-event work happens in-stream; only
/// the (cheap, header-count-sized) average join is deferred to
/// [`finish`](GasCollector::finish).
#[derive(Debug)]
pub struct GasCollector {
    time_map: Option<defi_types::TimeMap>,
    window_blocks: u64,
    bids: Vec<(BlockNumber, Platform, GweiPrice)>,
}

impl GasCollector {
    /// A collector with the given moving-average window (the paper uses
    /// 6,000 blocks).
    pub fn new(window_blocks: u64) -> Self {
        GasCollector {
            time_map: None,
            window_blocks,
            bids: Vec::new(),
        }
    }

    /// Buffer one settled liquidation's gas bid (auctions are excluded, as in
    /// the figure).
    pub fn observe_record(&mut self, record: &LiquidationRecord) {
        if record.kind == LiquidationKind::FixedSpread {
            self.bids
                .push((record.block, record.platform, record.gas_price));
        }
    }

    /// Join against the chain's header moving average.
    pub fn finish(&self, chain: &Blockchain) -> GasCompetition {
        competition_from_bids(chain, &self.bids, self.window_blocks)
    }
}

impl Default for GasCollector {
    fn default() -> Self {
        GasCollector::new(GAS_WINDOW_BLOCKS)
    }
}

impl defi_sim::SimObserver for GasCollector {
    fn on_run_start(&mut self, run: &defi_sim::RunStart<'_>) {
        self.time_map = Some(run.time_map);
    }

    fn on_liquidation(&mut self, liquidation: &defi_sim::LiquidationObservation<'_>) {
        if let Some(record) = crate::records::observed_record(self.time_map, liquidation) {
            self.observe_record(&record);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use defi_chain::ChainConfig;
    use defi_types::{Address, MonthTag, Token, Wad};

    fn record(block: BlockNumber, gas_price: GweiPrice) -> LiquidationRecord {
        LiquidationRecord {
            platform: Platform::Compound,
            kind: LiquidationKind::FixedSpread,
            liquidator: Address::from_seed(1),
            borrower: Address::from_seed(2),
            block,
            month: MonthTag::new(2020, 5),
            debt_token: Token::DAI,
            collateral_token: Token::ETH,
            debt_repaid_usd: Wad::from_int(1_000),
            collateral_received_usd: Wad::from_int(1_080),
            gas_price,
            gas_used: 500_000,
            fee_usd: Wad::from_int(10),
            used_flash_loan: false,
            auction_started_at: None,
            auction_last_bid_at: None,
            tend_bids: 0,
            dent_bids: 0,
        }
    }

    fn chain_with_headers() -> Blockchain {
        let mut chain = Blockchain::new(ChainConfig::default());
        for i in 1..=50u64 {
            chain.advance_to(7_500_000 + i * 100, 0);
        }
        chain
    }

    #[test]
    fn share_above_average_is_computed() {
        let chain = chain_with_headers();
        // The simulated gas market hovers around ~10 gwei early on, so 1,000
        // gwei bids are above average and 1 gwei bids are below.
        let records = vec![
            record(7_500_500, 1_000),
            record(7_500_600, 1_000),
            record(7_500_700, 1_000),
            record(7_500_800, 1),
        ];
        let competition = gas_competition(&chain, &records, 6_000);
        assert_eq!(competition.points.len(), 4);
        assert!((competition.share_above_average - 0.75).abs() < 1e-9);
        assert!(competition.points[0].above_average);
        assert!(!competition.points[3].above_average);
    }

    #[test]
    fn auction_records_are_excluded() {
        let chain = chain_with_headers();
        let mut auction = record(7_500_500, 1_000);
        auction.kind = LiquidationKind::Auction(defi_chain::AuctionPhase::Tend);
        auction.platform = Platform::MakerDao;
        let competition = gas_competition(&chain, &[auction], 6_000);
        assert!(competition.points.is_empty());
        assert_eq!(competition.share_above_average, 0.0);
    }

    #[test]
    fn moving_average_series_covers_headers() {
        let chain = chain_with_headers();
        let competition = gas_competition(&chain, &[], 6_000);
        assert_eq!(competition.average_series.len(), chain.headers().len());
        for (_, avg) in &competition.average_series {
            assert!(*avg > 0.0);
        }
    }
}
