//! Gas market model.
//!
//! Figure 6 of the paper plots the gas price of every fixed-spread
//! liquidation transaction against the 6,000-block (≈ 1 day) moving average
//! of the block median gas price. Two qualitative features matter:
//!
//! 1. a **spike in March 2020** caused by the ETH price collapse and the
//!    resulting network congestion, and
//! 2. an **uptrend from May 2020** onwards driven by DeFi's growing
//!    popularity.
//!
//! The [`GasMarket`] reproduces both: the block-median gas price follows a
//! mean-reverting log process around a configurable baseline trend, and
//! scripted congestion episodes push the baseline (and the variance) up for
//! their duration. Liquidator agents then bid *relative* to the prevailing
//! median, which yields the paper's observation that 73.97 % of liquidations
//! pay an above-average fee.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

use defi_types::BlockNumber;

/// A gas price in gwei (10⁻⁹ ETH per gas unit).
pub type GweiPrice = u64;

/// A scripted congestion episode: between `from` and `to` the baseline gas
/// price is multiplied by `multiplier` and volatility is raised.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CongestionEpisode {
    /// First block of the episode.
    pub from: BlockNumber,
    /// Last block of the episode (inclusive).
    pub to: BlockNumber,
    /// Baseline multiplier during the episode (e.g. 10.0 for March 2020).
    pub multiplier: f64,
}

/// Configuration of the gas market.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GasMarketConfig {
    /// Gas price baseline (gwei) at the first block.
    pub initial_baseline: f64,
    /// Gas price baseline (gwei) at the last block; the baseline interpolates
    /// geometrically between the two, reproducing the 2020–2021 uptrend.
    pub final_baseline: f64,
    /// First block of the simulation (for the interpolation).
    pub start_block: BlockNumber,
    /// Last block of the simulation (for the interpolation).
    pub end_block: BlockNumber,
    /// Standard deviation of the per-block log-noise in calm conditions.
    pub calm_sigma: f64,
    /// Mean-reversion strength towards the baseline (0–1 per block).
    pub reversion: f64,
    /// Scripted congestion episodes.
    pub episodes: Vec<CongestionEpisode>,
    /// Block gas limit (gas units per block).
    pub block_gas_limit: u64,
    /// Window of the moving average reported alongside Figure 6 (blocks).
    pub moving_average_window: usize,
    /// RNG seed (the market is deterministic given the seed).
    pub seed: u64,
}

impl Default for GasMarketConfig {
    fn default() -> Self {
        GasMarketConfig {
            initial_baseline: 10.0,
            final_baseline: 120.0,
            start_block: 7_500_000,
            end_block: 12_344_944,
            calm_sigma: 0.08,
            reversion: 0.05,
            episodes: Vec::new(),
            block_gas_limit: 12_500_000,
            moving_average_window: 6_000,
            seed: 0x6a5,
        }
    }
}

impl GasMarketConfig {
    /// The configuration used by the two-year study scenario: baseline 10 →
    /// 120 gwei with a 10× congestion episode around 13 March 2020 (blocks
    /// ~9,620,000–9,700,000) and a 3× episode in February 2021.
    pub fn paper_study() -> Self {
        GasMarketConfig {
            episodes: vec![
                CongestionEpisode {
                    from: 9_707_000,
                    to: 9_792_000,
                    multiplier: 10.0,
                },
                CongestionEpisode {
                    from: 11_200_000,
                    to: 11_260_000,
                    multiplier: 2.5,
                },
                CongestionEpisode {
                    from: 11_900_000,
                    to: 11_990_000,
                    multiplier: 3.0,
                },
            ],
            ..GasMarketConfig::default()
        }
    }
}

/// Per-block gas price state.
#[derive(Debug, Clone)]
pub struct GasMarket {
    config: GasMarketConfig,
    rng: StdRng,
    /// Current block-median gas price (gwei, floating for the dynamics).
    current_median: f64,
    /// History of block medians for the moving average.
    window: VecDeque<f64>,
    window_sum: f64,
    last_block: BlockNumber,
}

impl GasMarket {
    /// Create a gas market from a configuration.
    pub fn new(config: GasMarketConfig) -> Self {
        let current = config.initial_baseline;
        let last_block = config.start_block;
        GasMarket {
            rng: StdRng::seed_from_u64(config.seed),
            current_median: current,
            window: VecDeque::with_capacity(config.moving_average_window),
            window_sum: 0.0,
            config,
            last_block,
        }
    }

    /// The block gas limit.
    pub fn block_gas_limit(&self) -> u64 {
        self.config.block_gas_limit
    }

    /// Baseline (trend) gas price at a block, including congestion episodes.
    pub fn baseline(&self, block: BlockNumber) -> f64 {
        let cfg = &self.config;
        let span = (cfg.end_block.saturating_sub(cfg.start_block)).max(1) as f64;
        let t = (block.saturating_sub(cfg.start_block) as f64 / span).clamp(0.0, 1.0);
        // Geometric interpolation keeps relative (percentage) growth constant.
        let mut base = cfg.initial_baseline * (cfg.final_baseline / cfg.initial_baseline).powf(t);
        for ep in &cfg.episodes {
            if block >= ep.from && block <= ep.to {
                base *= ep.multiplier;
            }
        }
        base
    }

    /// Whether a block falls inside a scripted congestion episode.
    pub fn is_congested(&self, block: BlockNumber) -> bool {
        self.config
            .episodes
            .iter()
            .any(|ep| block >= ep.from && block <= ep.to)
    }

    /// Advance the market to `block` and return the block-median gas price.
    ///
    /// Must be called with non-decreasing block numbers.
    pub fn advance(&mut self, block: BlockNumber) -> GweiPrice {
        let baseline = self.baseline(block);
        let sigma = if self.is_congested(block) {
            self.config.calm_sigma * 3.0
        } else {
            self.config.calm_sigma
        };
        let noise = Normal::new(0.0, sigma)
            .map(|n| n.sample(&mut self.rng))
            .unwrap_or(0.0);
        // Mean-revert the log price towards the baseline, then perturb.
        let log_current = self.current_median.max(0.1).ln();
        let log_target = baseline.max(0.1).ln();
        let log_next = log_current + self.config.reversion * (log_target - log_current) + noise;
        self.current_median = log_next.exp().clamp(1.0, 100_000.0);
        self.last_block = block;

        self.window.push_back(self.current_median);
        self.window_sum += self.current_median;
        if self.window.len() > self.config.moving_average_window {
            if let Some(old) = self.window.pop_front() {
                self.window_sum -= old;
            }
        }
        self.current_median.round() as GweiPrice
    }

    /// Current block-median gas price (gwei).
    pub fn median(&self) -> GweiPrice {
        self.current_median.round() as GweiPrice
    }

    /// Moving average of the block medians over the configured window
    /// (the "Average Gas Price" line in Figure 6).
    pub fn moving_average(&self) -> f64 {
        if self.window.is_empty() {
            self.current_median
        } else {
            self.window_sum / self.window.len() as f64
        }
    }

    /// A competitive bid around the current median: `aggressiveness` ≥ 0 is
    /// the fraction above the median the bidder is willing to pay (liquidators
    /// front-running each other, §3.1), with multiplicative jitter.
    pub fn competitive_bid(&mut self, aggressiveness: f64) -> GweiPrice {
        let jitter: f64 = self.rng.gen_range(0.9..1.25);
        let price = self.current_median * (1.0 + aggressiveness.max(0.0)) * jitter;
        price.round().max(1.0) as GweiPrice
    }

    /// A passive bid below the current median (bots that keep a fixed, stale
    /// gas price — these are the liquidations below the average line in
    /// Figure 6).
    pub fn passive_bid(&mut self, discount: f64) -> GweiPrice {
        let jitter: f64 = self.rng.gen_range(0.8..1.0);
        let price = self.current_median * (1.0 - discount.clamp(0.0, 0.95)) * jitter;
        price.round().max(1.0) as GweiPrice
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_trend_is_increasing() {
        let market = GasMarket::new(GasMarketConfig::paper_study());
        let early = market.baseline(8_000_000);
        let late = market.baseline(12_000_000);
        assert!(
            late > early * 2.0,
            "late baseline {late} should exceed early {early}"
        );
    }

    #[test]
    fn congestion_episode_raises_baseline() {
        let market = GasMarket::new(GasMarketConfig::paper_study());
        let calm = market.baseline(9_600_000);
        let congested = market.baseline(9_750_000);
        assert!(congested > calm * 5.0);
        assert!(market.is_congested(9_750_000));
        assert!(!market.is_congested(9_600_000));
    }

    #[test]
    fn advance_is_deterministic_for_seed() {
        let cfg = GasMarketConfig::paper_study();
        let mut a = GasMarket::new(cfg.clone());
        let mut b = GasMarket::new(cfg);
        for block in 7_500_000..7_500_100 {
            assert_eq!(a.advance(block), b.advance(block));
        }
    }

    #[test]
    fn moving_average_tracks_median() {
        let mut market = GasMarket::new(GasMarketConfig::default());
        for block in 7_500_000..7_502_000 {
            market.advance(block);
        }
        let avg = market.moving_average();
        let median = market.median() as f64;
        assert!(avg > 0.0);
        // They should be in the same ballpark in calm conditions.
        assert!(avg < median * 5.0 && median < avg * 5.0);
    }

    #[test]
    fn competitive_bid_above_passive_bid() {
        let mut market = GasMarket::new(GasMarketConfig::default());
        market.advance(7_500_001);
        let mut competitive_higher = 0;
        for _ in 0..50 {
            let c = market.competitive_bid(0.5);
            let p = market.passive_bid(0.5);
            if c > p {
                competitive_higher += 1;
            }
        }
        assert!(competitive_higher > 45);
    }

    #[test]
    fn prices_stay_in_sane_range() {
        let mut market = GasMarket::new(GasMarketConfig::paper_study());
        for block in (7_500_000..12_344_944).step_by(10_000) {
            let p = market.advance(block);
            assert!(
                (1..=100_000).contains(&p),
                "price {p} out of range at block {block}"
            );
        }
    }
}
