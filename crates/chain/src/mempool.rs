//! Pending-transaction pool with gas-price priority inclusion.
//!
//! "Due to the limited space of an Ethereum block …, a financially rational
//! miner may include the transactions with the highest gas prices from the
//! mempool into the next block. The blockchain network congests when the
//! mempool grows faster than the transaction inclusion speed" (§2.1). This is
//! the mechanism that caused the March 2020 MakerDAO incident: keeper bots
//! bidding stale gas prices were simply not included.
//!
//! The model: each block has `block_gas_limit` gas of capacity. Background
//! demand (ordinary transfers, trades, etc.) consumes a block-dependent share
//! of that capacity, with gas prices log-normally distributed around the
//! block median. A pending transaction is included once the background gas
//! bidding *more* than it — plus any higher-bidding pending transactions —
//! fits within the limit.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

use defi_types::{Address, BlockNumber};

use crate::gas::GweiPrice;

/// A transaction waiting in the mempool.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PendingTx {
    /// Caller-assigned identifier, echoed back on inclusion.
    pub id: u64,
    /// Sender address.
    pub sender: Address,
    /// Gas price bid (gwei).
    pub gas_price: GweiPrice,
    /// Gas the transaction will consume.
    pub gas_limit: u64,
    /// Block at which the transaction was submitted.
    pub submitted_at: BlockNumber,
    /// Human-readable label (diagnostics).
    pub label: String,
}

/// Background (non-protocol) demand model for one block.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct BackgroundDemand {
    /// Total gas demanded by background transactions, as a multiple of the
    /// block gas limit. Values above 1.0 mean the block is oversubscribed.
    pub utilization: f64,
    /// Median gas price of the background demand (gwei).
    pub median_gas_price: f64,
    /// Log-space standard deviation of background gas prices.
    pub sigma: f64,
}

impl BackgroundDemand {
    /// Calm network conditions.
    pub fn calm(median_gas_price: f64) -> Self {
        BackgroundDemand {
            utilization: 0.75,
            median_gas_price,
            sigma: 0.5,
        }
    }

    /// Congested conditions (demand exceeds capacity).
    pub fn congested(median_gas_price: f64) -> Self {
        BackgroundDemand {
            utilization: 2.5,
            median_gas_price,
            sigma: 0.7,
        }
    }

    /// Fraction of the background demand bidding at or above `price`,
    /// under the log-normal price model.
    fn share_above(&self, price: GweiPrice) -> f64 {
        if price == 0 {
            return 1.0;
        }
        let z = ((price as f64).ln() - self.median_gas_price.max(1e-9).ln()) / self.sigma;
        1.0 - normal_cdf(z)
    }

    /// Gas demanded by background transactions bidding at or above `price`,
    /// given the block gas limit.
    pub fn gas_above(&self, price: GweiPrice, block_gas_limit: u64) -> f64 {
        self.utilization * block_gas_limit as f64 * self.share_above(price)
    }
}

/// Standard normal CDF via the Abramowitz–Stegun erf approximation
/// (max error ≈ 1.5e-7, far below what the congestion model needs).
fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// The pending-transaction pool.
#[derive(Debug, Default, Clone)]
pub struct Mempool {
    pending: VecDeque<PendingTx>,
    next_id: u64,
}

impl Mempool {
    /// An empty mempool.
    pub fn new() -> Self {
        Mempool::default()
    }

    /// Submit a transaction; returns the id assigned to it.
    pub fn submit(
        &mut self,
        sender: Address,
        gas_price: GweiPrice,
        gas_limit: u64,
        submitted_at: BlockNumber,
        label: impl Into<String>,
    ) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.pending.push_back(PendingTx {
            id,
            sender,
            gas_price,
            gas_limit,
            submitted_at,
            label: label.into(),
        });
        id
    }

    /// Number of transactions waiting.
    pub fn backlog(&self) -> usize {
        self.pending.len()
    }

    /// Whether a transaction is still pending.
    pub fn is_pending(&self, id: u64) -> bool {
        self.pending.iter().any(|tx| tx.id == id)
    }

    /// Drop a pending transaction (e.g. the sender replaces or abandons it).
    pub fn cancel(&mut self, id: u64) -> Option<PendingTx> {
        let pos = self.pending.iter().position(|tx| tx.id == id)?;
        self.pending.remove(pos)
    }

    /// Allow a sender to re-bid a pending transaction at a higher gas price
    /// (what a well-run liquidation bot does under congestion).
    pub fn bump_gas_price(&mut self, id: u64, new_price: GweiPrice) -> bool {
        if let Some(tx) = self.pending.iter_mut().find(|tx| tx.id == id) {
            if new_price > tx.gas_price {
                tx.gas_price = new_price;
                return true;
            }
        }
        false
    }

    /// Select the transactions included in the next block and remove them
    /// from the pool. Pending transactions are considered in descending gas
    /// price order; each must fit in the capacity left after the background
    /// demand bidding above it.
    pub fn select_included(
        &mut self,
        demand: BackgroundDemand,
        block_gas_limit: u64,
    ) -> Vec<PendingTx> {
        let mut candidates: Vec<PendingTx> = self.pending.iter().cloned().collect();
        // Highest gas price first; ties broken by submission order (FIFO).
        candidates.sort_by(|a, b| b.gas_price.cmp(&a.gas_price).then(a.id.cmp(&b.id)));

        let mut included = Vec::new();
        let mut protocol_gas_used = 0f64;
        for tx in candidates {
            let background = demand.gas_above(tx.gas_price, block_gas_limit);
            if background + protocol_gas_used + tx.gas_limit as f64 <= block_gas_limit as f64 {
                protocol_gas_used += tx.gas_limit as f64;
                included.push(tx);
            }
        }

        let included_ids: Vec<u64> = included.iter().map(|tx| tx.id).collect();
        self.pending.retain(|tx| !included_ids.contains(&tx.id));
        included
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIMIT: u64 = 12_500_000;

    fn addr(n: u64) -> Address {
        Address::from_seed(n)
    }

    #[test]
    fn calm_network_includes_median_bidders() {
        let mut pool = Mempool::new();
        pool.submit(addr(1), 20, 500_000, 1, "liq");
        let included = pool.select_included(BackgroundDemand::calm(20.0), LIMIT);
        assert_eq!(included.len(), 1);
        assert_eq!(pool.backlog(), 0);
    }

    #[test]
    fn congested_network_excludes_low_bidders() {
        let mut pool = Mempool::new();
        pool.submit(addr(1), 20, 500_000, 1, "stale bot");
        pool.submit(addr(2), 2_000, 500_000, 1, "aggressive bot");
        let included = pool.select_included(BackgroundDemand::congested(200.0), LIMIT);
        let ids: Vec<u64> = included.iter().map(|t| t.id).collect();
        assert!(ids.contains(&1), "high bidder must be included");
        assert!(!ids.contains(&0), "stale low bidder must wait");
        assert_eq!(pool.backlog(), 1);
    }

    #[test]
    fn bump_gas_price_gets_transaction_included() {
        let mut pool = Mempool::new();
        let id = pool.submit(addr(1), 20, 500_000, 1, "bot");
        let included = pool.select_included(BackgroundDemand::congested(200.0), LIMIT);
        assert!(included.is_empty());
        assert!(pool.bump_gas_price(id, 5_000));
        let included = pool.select_included(BackgroundDemand::congested(200.0), LIMIT);
        assert_eq!(included.len(), 1);
    }

    #[test]
    fn bump_to_lower_price_is_rejected() {
        let mut pool = Mempool::new();
        let id = pool.submit(addr(1), 100, 500_000, 1, "bot");
        assert!(!pool.bump_gas_price(id, 50));
    }

    #[test]
    fn priority_is_by_gas_price() {
        let mut pool = Mempool::new();
        // Block fits only ~3.1M protocol gas above 75th percentile of calm demand.
        for i in 0..10 {
            pool.submit(addr(i), 10 + i * 10, 2_000_000, 1, "tx");
        }
        let included = pool.select_included(BackgroundDemand::calm(50.0), LIMIT);
        assert!(!included.is_empty());
        // Included prices should all be >= the max excluded price.
        let min_included = included.iter().map(|t| t.gas_price).min().unwrap();
        let max_pending = pool.pending.iter().map(|t| t.gas_price).max().unwrap_or(0);
        assert!(min_included >= max_pending);
    }

    #[test]
    fn cancel_removes_pending() {
        let mut pool = Mempool::new();
        let id = pool.submit(addr(1), 10, 100, 1, "tx");
        assert!(pool.is_pending(id));
        assert!(pool.cancel(id).is_some());
        assert!(!pool.is_pending(id));
        assert!(pool.cancel(id).is_none());
    }

    #[test]
    fn erf_sane() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-6);
        assert!(normal_cdf(3.0) > 0.998);
        assert!(normal_cdf(-3.0) < 0.002);
    }
}
