//! # defi-chain
//!
//! An in-memory Ethereum-like blockchain simulator providing the substrate the
//! paper's measurement pipeline runs against.
//!
//! The original study crawls an Ethereum **archive node**: it filters EVM
//! event logs emitted by lending contracts, reads historical block state, and
//! replays transactions on past blocks (§4.1, Figure 3). This crate provides
//! the same abstractions without a real node:
//!
//! * [`ledger`] — account/token balances with journaled, atomically revertible
//!   mutations (the property flash loans rely on, §2.2.2).
//! * [`events`] — a typed event-log vocabulary (liquidation calls, auction
//!   bids, flash loans, oracle updates) with filtering by platform, kind and
//!   block range, mirroring "filter the liquidation events emitted from the
//!   studied lending pools".
//! * [`gas`] — a gas market: per-block median gas price, congestion dynamics,
//!   scripted congestion episodes (13 March 2020), the 6,000-block moving
//!   average used in Figure 6.
//! * [`mempool`] — pending-transaction pool with gas-price priority ordering
//!   and limited per-block inclusion capacity; under congestion, low-paying
//!   transactions wait, which is exactly what broke the MakerDAO keeper bots.
//! * [`block`] — block headers and transaction receipts.
//! * [`chain`] — the [`Blockchain`] façade tying everything together: block
//!   production, transaction execution with revert semantics, event emission,
//!   archive queries.
//!
//! Nothing here performs networking or consensus; the simulator is an
//! accounting-accurate stand-in whose behaviour (atomicity, ordering by gas
//! price, congestion) matches what the measured phenomena depend on.

#![forbid(unsafe_code)]

pub mod block;
pub mod chain;
pub mod events;
pub mod gas;
pub mod ledger;
pub mod mempool;

pub use block::{BlockHeader, TxReceipt};
pub use chain::{Blockchain, ChainConfig, ChainError, TxOutcome};
pub use events::{
    AuctionId, AuctionPhase, ChainEvent, EventFilter, EventKind, EventLog, LiquidationEvent,
    LoggedEvent,
};
pub use gas::{CongestionEpisode, GasMarket, GasMarketConfig, GweiPrice};
pub use ledger::{Ledger, LedgerError};
pub use mempool::{Mempool, PendingTx};
