//! Typed event logs.
//!
//! The paper's measurement setup "filter[s] the liquidation events emitted
//! from the studied lending pools" (§4.1). This module is the simulator's
//! equivalent of the EVM log: protocols emit [`ChainEvent`]s while executing
//! inside a transaction; the [`EventLog`] records them together with the
//! transaction context (block, sender, gas price, gas used) that the
//! analytics layer needs to reproduce Figures 4–7 and Tables 1–8.

use serde::{Deserialize, Serialize};

use defi_types::{Address, BlockNumber, Platform, Token, TxHash, Wad};

use crate::gas::GweiPrice;

/// Identifier of a MakerDAO collateral auction.
pub type AuctionId = u64;

/// Phase of a MakerDAO tend–dent auction (§3.2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AuctionPhase {
    /// Bidders compete by raising the debt they repay for the full collateral.
    Tend,
    /// Bidders compete by accepting less collateral for the full debt.
    Dent,
}

/// A fixed-spread liquidation settlement (Aave, Compound, dYdX
/// `liquidationCall`-style events).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LiquidationEvent {
    /// Platform on which the liquidation settled.
    pub platform: Platform,
    /// Address of the liquidator (the paper identifies liquidators by unique address).
    pub liquidator: Address,
    /// Address of the borrower whose position was (partially) closed.
    pub borrower: Address,
    /// Token in which the repaid debt is denominated.
    pub debt_token: Token,
    /// Amount of debt repaid (token units).
    pub debt_repaid: Wad,
    /// USD value of the repaid debt at the settlement-block oracle price.
    pub debt_repaid_usd: Wad,
    /// Token in which the seized collateral is denominated.
    pub collateral_token: Token,
    /// Amount of collateral transferred to the liquidator (token units).
    pub collateral_seized: Wad,
    /// USD value of the seized collateral at the settlement-block oracle price.
    pub collateral_seized_usd: Wad,
    /// Whether the liquidator funded the repayment with a flash loan.
    pub used_flash_loan: bool,
}

impl LiquidationEvent {
    /// Liquidator profit before transaction fees: collateral received minus
    /// debt repaid, both valued at the settlement-block oracle prices
    /// (the paper assumes "the purchased collateral is immediately sold …
    /// at the price given by the price oracle", §4.3.1).
    pub fn gross_profit_usd(&self) -> Wad {
        self.collateral_seized_usd
            .saturating_sub(self.debt_repaid_usd)
    }
}

/// Events emitted by the protocols and the oracle during simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ChainEvent {
    /// A fixed-spread liquidation settled atomically.
    Liquidation(LiquidationEvent),
    /// A MakerDAO auction was initiated (`bite`).
    AuctionStarted {
        /// Auction identifier.
        auction_id: AuctionId,
        /// Borrower whose CDP is being liquidated.
        borrower: Address,
        /// Collateral token put up for auction.
        collateral_token: Token,
        /// Collateral amount (token units).
        collateral_amount: Wad,
        /// Outstanding debt to be recovered (DAI).
        debt: Wad,
    },
    /// A bid was placed in a MakerDAO auction.
    AuctionBid {
        /// Auction identifier.
        auction_id: AuctionId,
        /// Bidder address.
        bidder: Address,
        /// Auction phase the bid belongs to.
        phase: AuctionPhase,
        /// Debt the bidder commits to repay (tend) — equals the full debt in dent.
        debt_bid: Wad,
        /// Collateral the bidder accepts (dent) — equals the full collateral in tend.
        collateral_bid: Wad,
    },
    /// A MakerDAO auction was finalised (`deal`).
    AuctionFinalized {
        /// Auction identifier.
        auction_id: AuctionId,
        /// Winning bidder.
        winner: Address,
        /// Debt repaid by the winner (DAI).
        debt_repaid: Wad,
        /// USD value of the repaid debt at finalisation.
        debt_repaid_usd: Wad,
        /// Collateral token received by the winner.
        collateral_token: Token,
        /// Collateral amount received.
        collateral_received: Wad,
        /// USD value of the received collateral at finalisation.
        collateral_received_usd: Wad,
        /// Borrower whose CDP was liquidated.
        borrower: Address,
        /// Block at which the auction was initiated (for duration statistics).
        started_at: BlockNumber,
        /// Block of the last bid (for duration statistics).
        last_bid_at: BlockNumber,
        /// Number of bids placed in the tend phase.
        tend_bids: u32,
        /// Number of bids placed in the dent phase.
        dent_bids: u32,
        /// Phase in which the auction terminated.
        final_phase: AuctionPhase,
    },
    /// A flash loan was taken and repaid within one transaction.
    FlashLoan {
        /// Pool providing the flash loan (Aave V1, Aave V2 or dYdX).
        pool: Platform,
        /// Borrowing contract/account.
        borrower: Address,
        /// Token borrowed.
        token: Token,
        /// Amount borrowed (token units).
        amount: Wad,
        /// USD value of the amount at the block's oracle price.
        amount_usd: Wad,
        /// Fee paid to the pool (token units).
        fee: Wad,
    },
    /// The price oracle pushed a new price on-chain.
    OracleUpdate {
        /// Token whose price changed.
        token: Token,
        /// New USD price.
        price: Wad,
    },
    /// A borrower opened or increased a debt position (used by volume metrics).
    Borrow {
        /// Platform.
        platform: Platform,
        /// Borrower.
        borrower: Address,
        /// Debt token.
        token: Token,
        /// Amount borrowed.
        amount: Wad,
    },
    /// A borrower deposited collateral.
    Deposit {
        /// Platform.
        platform: Platform,
        /// Depositor.
        account: Address,
        /// Collateral token.
        token: Token,
        /// Amount deposited.
        amount: Wad,
    },
    /// A borrower repaid debt.
    Repay {
        /// Platform.
        platform: Platform,
        /// Borrower.
        borrower: Address,
        /// Debt token.
        token: Token,
        /// Amount repaid.
        amount: Wad,
    },
}

impl ChainEvent {
    /// Coarse classification used by [`EventFilter::kind`].
    pub fn kind(&self) -> EventKind {
        match self {
            ChainEvent::Liquidation(_) => EventKind::Liquidation,
            ChainEvent::AuctionStarted { .. } => EventKind::AuctionStarted,
            ChainEvent::AuctionBid { .. } => EventKind::AuctionBid,
            ChainEvent::AuctionFinalized { .. } => EventKind::AuctionFinalized,
            ChainEvent::FlashLoan { .. } => EventKind::FlashLoan,
            ChainEvent::OracleUpdate { .. } => EventKind::OracleUpdate,
            ChainEvent::Borrow { .. } => EventKind::Borrow,
            ChainEvent::Deposit { .. } => EventKind::Deposit,
            ChainEvent::Repay { .. } => EventKind::Repay,
        }
    }

    /// The platform the event belongs to, when applicable.
    pub fn platform(&self) -> Option<Platform> {
        match self {
            ChainEvent::Liquidation(ev) => Some(ev.platform),
            ChainEvent::AuctionStarted { .. }
            | ChainEvent::AuctionBid { .. }
            | ChainEvent::AuctionFinalized { .. } => Some(Platform::MakerDao),
            ChainEvent::FlashLoan { pool, .. } => Some(*pool),
            ChainEvent::Borrow { platform, .. }
            | ChainEvent::Deposit { platform, .. }
            | ChainEvent::Repay { platform, .. } => Some(*platform),
            ChainEvent::OracleUpdate { .. } => None,
        }
    }
}

/// Event classification mirroring EVM event signatures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EventKind {
    /// Fixed-spread liquidation.
    Liquidation,
    /// Auction initiation (`bite`).
    AuctionStarted,
    /// Auction bid (`tend`/`dent`).
    AuctionBid,
    /// Auction finalisation (`deal`).
    AuctionFinalized,
    /// Flash loan.
    FlashLoan,
    /// Oracle price update.
    OracleUpdate,
    /// Borrow.
    Borrow,
    /// Collateral deposit.
    Deposit,
    /// Debt repayment.
    Repay,
}

/// An event together with the transaction context it was emitted in.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoggedEvent {
    /// Block in which the emitting transaction was included.
    pub block: BlockNumber,
    /// Index of the transaction within the block.
    pub tx_index: u32,
    /// Hash of the emitting transaction.
    pub tx_hash: TxHash,
    /// Transaction sender (the liquidator for liquidation calls).
    pub sender: Address,
    /// Gas price the sender paid (gwei).
    pub gas_price: GweiPrice,
    /// Gas consumed by the transaction.
    pub gas_used: u64,
    /// The event payload.
    pub event: ChainEvent,
}

/// Predicate describing which logged events to return, analogous to an
/// `eth_getLogs` filter (by topic/contract/block range).
#[derive(Debug, Clone, Default)]
pub struct EventFilter {
    /// Only events of this kind.
    pub kind: Option<EventKind>,
    /// Only events attributed to this platform.
    pub platform: Option<Platform>,
    /// Only events at or after this block.
    pub from_block: Option<BlockNumber>,
    /// Only events at or before this block.
    pub to_block: Option<BlockNumber>,
}

impl EventFilter {
    /// Filter matching every event.
    pub fn any() -> Self {
        EventFilter::default()
    }

    /// Restrict to a kind.
    pub fn kind(mut self, kind: EventKind) -> Self {
        self.kind = Some(kind);
        self
    }

    /// Restrict to a platform.
    pub fn platform(mut self, platform: Platform) -> Self {
        self.platform = Some(platform);
        self
    }

    /// Restrict to a block range (inclusive).
    pub fn block_range(mut self, from: BlockNumber, to: BlockNumber) -> Self {
        self.from_block = Some(from);
        self.to_block = Some(to);
        self
    }

    /// Whether a logged event matches this filter.
    pub fn matches(&self, logged: &LoggedEvent) -> bool {
        if let Some(kind) = self.kind {
            if logged.event.kind() != kind {
                return false;
            }
        }
        if let Some(platform) = self.platform {
            if logged.event.platform() != Some(platform) {
                return false;
            }
        }
        if let Some(from) = self.from_block {
            if logged.block < from {
                return false;
            }
        }
        if let Some(to) = self.to_block {
            if logged.block > to {
                return false;
            }
        }
        true
    }
}

/// Append-only store of every event emitted during a simulation run.
#[derive(Debug, Default, Clone)]
pub struct EventLog {
    entries: Vec<LoggedEvent>,
}

impl EventLog {
    /// An empty log.
    pub fn new() -> Self {
        EventLog::default()
    }

    /// Append an event.
    pub fn push(&mut self, event: LoggedEvent) {
        self.entries.push(event);
    }

    /// Number of logged events.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate over all logged events in emission order.
    pub fn iter(&self) -> impl Iterator<Item = &LoggedEvent> {
        self.entries.iter()
    }

    /// The full log as a slice, in emission order (streaming consumers index
    /// into this with a cursor to pick up where they left off).
    pub fn as_slice(&self) -> &[LoggedEvent] {
        &self.entries
    }

    /// All events matching a filter, in emission order.
    pub fn query(&self, filter: &EventFilter) -> Vec<&LoggedEvent> {
        self.entries.iter().filter(|e| filter.matches(e)).collect()
    }

    /// Convenience: all fixed-spread liquidation events.
    pub fn liquidations(&self) -> impl Iterator<Item = (&LoggedEvent, &LiquidationEvent)> {
        self.entries
            .iter()
            .filter_map(|logged| match &logged.event {
                ChainEvent::Liquidation(ev) => Some((logged, ev)),
                _ => None,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_liquidation(platform: Platform, block: BlockNumber) -> LoggedEvent {
        LoggedEvent {
            block,
            tx_index: 0,
            tx_hash: TxHash::derive(block, 0, 0),
            sender: Address::from_seed(9),
            gas_price: 80,
            gas_used: 400_000,
            event: ChainEvent::Liquidation(LiquidationEvent {
                platform,
                liquidator: Address::from_seed(9),
                borrower: Address::from_seed(1),
                debt_token: Token::DAI,
                debt_repaid: Wad::from_int(1_000),
                debt_repaid_usd: Wad::from_int(1_000),
                collateral_token: Token::ETH,
                collateral_seized: Wad::from_int(1),
                collateral_seized_usd: Wad::from_int(1_080),
                used_flash_loan: false,
            }),
        }
    }

    #[test]
    fn gross_profit_is_spread() {
        let logged = sample_liquidation(Platform::Compound, 10);
        if let ChainEvent::Liquidation(ev) = &logged.event {
            assert_eq!(ev.gross_profit_usd(), Wad::from_int(80));
        } else {
            unreachable!()
        }
    }

    #[test]
    fn filter_by_kind_platform_and_range() {
        let mut log = EventLog::new();
        log.push(sample_liquidation(Platform::Compound, 10));
        log.push(sample_liquidation(Platform::DyDx, 20));
        log.push(LoggedEvent {
            event: ChainEvent::OracleUpdate {
                token: Token::ETH,
                price: Wad::from_int(3000),
            },
            ..sample_liquidation(Platform::Compound, 30)
        });

        assert_eq!(log.query(&EventFilter::any()).len(), 3);
        assert_eq!(
            log.query(&EventFilter::any().kind(EventKind::Liquidation))
                .len(),
            2
        );
        assert_eq!(
            log.query(&EventFilter::any().platform(Platform::DyDx))
                .len(),
            1
        );
        assert_eq!(log.query(&EventFilter::any().block_range(15, 35)).len(), 2);
        assert_eq!(log.liquidations().count(), 2);
    }

    #[test]
    fn oracle_update_has_no_platform() {
        let ev = ChainEvent::OracleUpdate {
            token: Token::DAI,
            price: Wad::ONE,
        };
        assert_eq!(ev.platform(), None);
        assert_eq!(ev.kind(), EventKind::OracleUpdate);
    }
}
