//! The [`Blockchain`] façade: block production, atomic transaction execution,
//! event emission and archive-style queries.
//!
//! The simulator intentionally exposes the same three capabilities the
//! paper's measurement stack uses (§4.1, Figure 3):
//!
//! 1. **filter events** — [`Blockchain::events`] / [`Blockchain::query_events`],
//! 2. **read historical state** — callers snapshot protocol state at chosen
//!    blocks (the chain records headers and balances as they evolve), and
//! 3. **execute transactions on a specific block state** — i.e. the custom
//!    geth client the authors built to validate the optimal liquidation
//!    strategy; here [`Blockchain::execute`] runs a closure atomically with
//!    revert-on-error semantics and [`Ledger`] checkpoints make "fork the
//!    state, try a strategy, roll back" a one-liner.

use serde::{Deserialize, Serialize};

use defi_types::{Address, BlockNumber, TimeMap, TxHash};

use crate::block::{BlockHeader, TxReceipt};
use crate::events::{ChainEvent, EventFilter, EventLog, LoggedEvent};
use crate::gas::{GasMarket, GasMarketConfig, GweiPrice};
use crate::ledger::Ledger;

/// Errors surfaced by transaction execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainError {
    /// The transaction's closure reverted with a reason string; all state
    /// changes were rolled back.
    Reverted(String),
}

impl core::fmt::Display for ChainError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ChainError::Reverted(reason) => write!(f, "transaction reverted: {reason}"),
        }
    }
}

impl std::error::Error for ChainError {}

/// Static chain configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChainConfig {
    /// Block at which the simulation starts.
    pub start_block: BlockNumber,
    /// Block ⇄ time mapping.
    pub time_map: TimeMap,
    /// Gas market configuration.
    pub gas: GasMarketConfig,
    /// Default gas consumption assumed for a fixed-spread liquidation call.
    pub liquidation_gas: u64,
    /// Default gas consumption assumed for an auction bid.
    pub auction_bid_gas: u64,
}

impl Default for ChainConfig {
    fn default() -> Self {
        ChainConfig {
            start_block: 7_500_000,
            time_map: TimeMap::paper_study_window(),
            gas: GasMarketConfig::paper_study(),
            liquidation_gas: 500_000,
            auction_bid_gas: 150_000,
        }
    }
}

/// Result of executing a transaction.
#[derive(Debug, Clone)]
pub struct TxOutcome {
    /// The receipt (recorded in the chain whether or not execution succeeded).
    pub receipt: TxReceipt,
    /// `Ok(())` on success, the revert reason otherwise.
    pub result: Result<(), ChainError>,
}

impl TxOutcome {
    /// Whether the transaction succeeded.
    pub fn is_success(&self) -> bool {
        self.result.is_ok()
    }
}

/// Scratch context handed to the closure executed inside a transaction.
pub struct TxContext<'a> {
    /// Balance ledger with an open checkpoint; mutations revert if the
    /// closure returns an error.
    pub ledger: &'a mut Ledger,
    /// Events to emit when (and only when) the transaction succeeds.
    pub events: &'a mut Vec<ChainEvent>,
    /// The block the transaction executes in.
    pub block: BlockNumber,
    /// The transaction sender.
    pub sender: Address,
}

/// The in-memory blockchain.
#[derive(Debug, Clone)]
pub struct Blockchain {
    config: ChainConfig,
    current_block: BlockNumber,
    gas_market: GasMarket,
    ledger: Ledger,
    events: EventLog,
    headers: Vec<BlockHeader>,
    tx_counter: u64,
    current_block_tx_index: u32,
    current_block_gas_used: u64,
    receipts: Vec<TxReceipt>,
    /// Keep only the most recent receipts to bound memory in long runs.
    max_receipts: usize,
}

impl Blockchain {
    /// Create a chain from a configuration.
    pub fn new(config: ChainConfig) -> Self {
        let gas_market = GasMarket::new(config.gas.clone());
        let current_block = config.start_block;
        Blockchain {
            config,
            current_block,
            gas_market,
            ledger: Ledger::new(),
            events: EventLog::new(),
            headers: Vec::new(),
            tx_counter: 0,
            current_block_tx_index: 0,
            current_block_gas_used: 0,
            receipts: Vec::new(),
            max_receipts: 10_000,
        }
    }

    /// Reconstruct an archive-style chain from recorded headers and events —
    /// the shape a journal replay needs: [`Blockchain::headers`] and
    /// [`Blockchain::events`] answer exactly as they did at the end of the
    /// live run, while the ledger, gas market and receipt buffer start empty
    /// (no replayed consumer reads them).
    pub fn from_archive(config: ChainConfig, headers: Vec<BlockHeader>, events: EventLog) -> Self {
        let gas_market = GasMarket::new(config.gas.clone());
        let current_block = headers
            .last()
            .map(|h| h.number)
            .unwrap_or(config.start_block);
        Blockchain {
            config,
            current_block,
            gas_market,
            ledger: Ledger::new(),
            events,
            headers,
            tx_counter: 0,
            current_block_tx_index: 0,
            current_block_gas_used: 0,
            receipts: Vec::new(),
            max_receipts: 10_000,
        }
    }

    /// The chain configuration.
    pub fn config(&self) -> &ChainConfig {
        &self.config
    }

    /// Current block height.
    pub fn current_block(&self) -> BlockNumber {
        self.current_block
    }

    /// The block ⇄ time mapping.
    pub fn time_map(&self) -> &TimeMap {
        &self.config.time_map
    }

    /// Immutable access to the balance ledger.
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// Mutable access to the balance ledger (for scenario setup: funding
    /// accounts, seeding pools). Inside transactions use the [`TxContext`].
    pub fn ledger_mut(&mut self) -> &mut Ledger {
        &mut self.ledger
    }

    /// Immutable access to the gas market.
    pub fn gas_market(&self) -> &GasMarket {
        &self.gas_market
    }

    /// Mutable access to the gas market (liquidator agents ask it for bids).
    pub fn gas_market_mut(&mut self) -> &mut GasMarket {
        &mut self.gas_market
    }

    /// The full event log.
    pub fn events(&self) -> &EventLog {
        &self.events
    }

    /// Query events by filter.
    pub fn query_events(&self, filter: &EventFilter) -> Vec<&LoggedEvent> {
        self.events.query(filter)
    }

    /// Recorded block headers (one per `advance_to` call that moved the chain).
    pub fn headers(&self) -> &[BlockHeader] {
        &self.headers
    }

    /// Recently recorded receipts (bounded buffer).
    pub fn recent_receipts(&self) -> &[TxReceipt] {
        &self.receipts
    }

    /// Current block-median gas price.
    pub fn median_gas_price(&self) -> GweiPrice {
        self.gas_market.median()
    }

    /// Seal the current block (recording its header) and advance the chain
    /// head to `block`. Also advances the gas market. Calls with
    /// `block <= current_block` only refresh gas data.
    pub fn advance_to(&mut self, block: BlockNumber, mempool_backlog: u32) {
        // Seal the block we were building.
        let header = BlockHeader {
            number: self.current_block,
            timestamp: self.config.time_map.timestamp(self.current_block),
            gas_used: self.current_block_gas_used,
            gas_limit: self.gas_market.block_gas_limit(),
            median_gas_price: self.gas_market.median(),
            tx_count: self.current_block_tx_index,
            mempool_backlog,
        };
        self.headers.push(header);
        self.current_block_gas_used = 0;
        self.current_block_tx_index = 0;
        if block > self.current_block {
            self.current_block = block;
        }
        self.gas_market.advance(self.current_block);
    }

    /// Execute a transaction at the current block.
    ///
    /// The closure receives a [`TxContext`]; if it returns `Err`, every ledger
    /// mutation it performed is rolled back and no events are logged — the
    /// transaction is still recorded as a failed receipt (it pays gas, like a
    /// reverted Ethereum transaction).
    pub fn execute<F>(
        &mut self,
        sender: Address,
        gas_price: GweiPrice,
        gas_used: u64,
        label: &str,
        f: F,
    ) -> TxOutcome
    where
        F: FnOnce(&mut TxContext<'_>) -> Result<(), String>,
    {
        let block = self.current_block;
        let tx_index = self.current_block_tx_index;
        let hash = TxHash::derive(block, tx_index as u64, self.tx_counter);
        self.tx_counter += 1;
        self.current_block_tx_index += 1;
        self.current_block_gas_used = self.current_block_gas_used.saturating_add(gas_used);

        let mut emitted: Vec<ChainEvent> = Vec::new();
        self.ledger.begin_checkpoint();
        let result = {
            let mut ctx = TxContext {
                ledger: &mut self.ledger,
                events: &mut emitted,
                block,
                sender,
            };
            f(&mut ctx)
        };

        let (success, result, events) = match result {
            Ok(()) => {
                self.ledger.commit_checkpoint();
                (true, Ok(()), emitted)
            }
            Err(reason) => {
                self.ledger.revert_checkpoint();
                (false, Err(ChainError::Reverted(reason)), Vec::new())
            }
        };

        // Log events with their transaction context.
        for event in &events {
            self.events.push(LoggedEvent {
                block,
                tx_index,
                tx_hash: hash,
                sender,
                gas_price,
                gas_used,
                event: event.clone(),
            });
        }

        let receipt = TxReceipt {
            hash,
            sender,
            block,
            index: tx_index,
            gas_price,
            gas_used,
            success,
            label: label.to_string(),
            events,
        };
        if self.receipts.len() >= self.max_receipts {
            self.receipts.remove(0);
        }
        self.receipts.push(receipt.clone());

        TxOutcome { receipt, result }
    }

    /// Fund an account outside of any transaction (scenario setup).
    pub fn fund(&mut self, account: Address, token: defi_types::Token, amount: defi_types::Wad) {
        self.ledger.mint(account, token, amount);
    }
}

impl Default for Blockchain {
    fn default() -> Self {
        Blockchain::new(ChainConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use defi_types::{Token, Wad};

    fn addr(n: u64) -> Address {
        Address::from_seed(n)
    }

    #[test]
    fn successful_tx_commits_and_logs_events() {
        let mut chain = Blockchain::default();
        chain.fund(addr(1), Token::DAI, Wad::from_int(100));

        let outcome = chain.execute(addr(1), 50, 21_000, "transfer", |ctx| {
            ctx.ledger
                .transfer(addr(1), addr(2), Token::DAI, Wad::from_int(40))
                .map_err(|e| e.to_string())?;
            ctx.events.push(ChainEvent::OracleUpdate {
                token: Token::DAI,
                price: Wad::ONE,
            });
            Ok(())
        });

        assert!(outcome.is_success());
        assert_eq!(
            chain.ledger().balance(addr(2), Token::DAI),
            Wad::from_int(40)
        );
        assert_eq!(chain.events().len(), 1);
        assert_eq!(chain.recent_receipts().len(), 1);
    }

    #[test]
    fn reverted_tx_rolls_back_and_logs_nothing() {
        let mut chain = Blockchain::default();
        chain.fund(addr(1), Token::DAI, Wad::from_int(100));

        let outcome = chain.execute(addr(1), 50, 21_000, "failing", |ctx| {
            ctx.ledger
                .transfer(addr(1), addr(2), Token::DAI, Wad::from_int(40))
                .map_err(|e| e.to_string())?;
            ctx.events.push(ChainEvent::OracleUpdate {
                token: Token::DAI,
                price: Wad::ONE,
            });
            Err("not profitable".to_string())
        });

        assert!(!outcome.is_success());
        assert_eq!(
            chain.ledger().balance(addr(1), Token::DAI),
            Wad::from_int(100)
        );
        assert_eq!(chain.ledger().balance(addr(2), Token::DAI), Wad::ZERO);
        assert!(chain.events().is_empty());
        // The failed transaction still produced a receipt (it paid gas).
        assert_eq!(chain.recent_receipts().len(), 1);
        assert!(!chain.recent_receipts()[0].success);
    }

    #[test]
    fn advance_records_headers_and_moves_head() {
        let mut chain = Blockchain::default();
        let start = chain.current_block();
        chain.execute(addr(1), 10, 21_000, "noop", |_| Ok(()));
        chain.advance_to(start + 100, 3);
        assert_eq!(chain.current_block(), start + 100);
        assert_eq!(chain.headers().len(), 1);
        assert_eq!(chain.headers()[0].number, start);
        assert_eq!(chain.headers()[0].tx_count, 1);
        assert_eq!(chain.headers()[0].mempool_backlog, 3);
    }

    #[test]
    fn tx_hashes_are_unique() {
        let mut chain = Blockchain::default();
        let a = chain
            .execute(addr(1), 10, 21_000, "a", |_| Ok(()))
            .receipt
            .hash;
        let b = chain
            .execute(addr(1), 10, 21_000, "b", |_| Ok(()))
            .receipt
            .hash;
        assert_ne!(a, b);
    }

    #[test]
    fn nested_execution_context_allows_flash_loan_pattern() {
        // A flash-loan style flow: mint inside the tx, use it, burn it back.
        let mut chain = Blockchain::default();
        let pool = addr(100);
        chain.fund(pool, Token::USDC, Wad::from_int(1_000_000));

        let outcome = chain.execute(addr(7), 80, 900_000, "flash-loan-liquidation", |ctx| {
            // Borrow from the pool.
            ctx.ledger
                .transfer(pool, addr(7), Token::USDC, Wad::from_int(500_000))
                .map_err(|e| e.to_string())?;
            // ... strategy would run here; repay with a fee.
            ctx.ledger
                .transfer(addr(7), pool, Token::USDC, Wad::from_int(500_000))
                .map_err(|e| e.to_string())?;
            Ok(())
        });
        assert!(outcome.is_success());
        assert_eq!(
            chain.ledger().balance(pool, Token::USDC),
            Wad::from_int(1_000_000)
        );
    }
}
