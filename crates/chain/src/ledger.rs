//! Token balance ledger with journaled, revertible mutations.
//!
//! Every protocol in the suite settles balance changes through this ledger.
//! Mutations performed inside a transaction scope are journaled so that a
//! failing transaction (e.g. an unprofitable flash-loan liquidation, §4.4.4:
//! "If the liquidation is not profitable, the flash loan would not succeed")
//! can be rolled back atomically, exactly like EVM revert semantics.

use std::collections::HashMap;

use defi_types::{Address, Token, Wad};

/// Errors raised by ledger operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LedgerError {
    /// The account does not hold enough of the token.
    InsufficientBalance {
        /// Account whose balance was insufficient.
        account: Address,
        /// Token being debited.
        token: Token,
        /// Amount requested.
        requested: Wad,
        /// Amount available.
        available: Wad,
    },
}

impl core::fmt::Display for LedgerError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            LedgerError::InsufficientBalance {
                account,
                token,
                requested,
                available,
            } => write!(
                f,
                "insufficient {token} balance for {}: requested {requested}, available {available}",
                account.short()
            ),
        }
    }
}

impl std::error::Error for LedgerError {}

/// One journal entry: the key touched and its value before the mutation.
#[derive(Debug, Clone, Copy)]
struct JournalEntry {
    account: Address,
    token: Token,
    previous: Wad,
}

/// Account/token balance store with nested-checkpoint journaling.
#[derive(Debug, Default, Clone)]
pub struct Ledger {
    balances: HashMap<(Address, Token), Wad>,
    journal: Vec<JournalEntry>,
    checkpoints: Vec<usize>,
}

impl Ledger {
    /// An empty ledger.
    pub fn new() -> Self {
        Ledger::default()
    }

    /// Current balance of `account` in `token`.
    pub fn balance(&self, account: Address, token: Token) -> Wad {
        self.balances
            .get(&(account, token))
            .copied()
            .unwrap_or(Wad::ZERO)
    }

    /// Total supply of a token across all accounts (sum of balances).
    pub fn total_supply(&self, token: Token) -> Wad {
        self.balances
            .iter()
            .filter(|((_, t), _)| *t == token)
            .map(|(_, v)| *v)
            .fold(Wad::ZERO, |acc, v| acc.saturating_add(v))
    }

    fn record(&mut self, account: Address, token: Token) {
        if !self.checkpoints.is_empty() {
            let previous = self.balance(account, token);
            self.journal.push(JournalEntry {
                account,
                token,
                previous,
            });
        }
    }

    /// Credit an account (minting if the funds come from nowhere).
    pub fn mint(&mut self, account: Address, token: Token, amount: Wad) {
        if amount.is_zero() {
            return;
        }
        self.record(account, token);
        let entry = self.balances.entry((account, token)).or_insert(Wad::ZERO);
        *entry = entry.saturating_add(amount);
    }

    /// Debit an account, failing if the balance is insufficient.
    pub fn burn(&mut self, account: Address, token: Token, amount: Wad) -> Result<(), LedgerError> {
        if amount.is_zero() {
            return Ok(());
        }
        let available = self.balance(account, token);
        if available < amount {
            return Err(LedgerError::InsufficientBalance {
                account,
                token,
                requested: amount,
                available,
            });
        }
        self.record(account, token);
        self.balances.insert((account, token), available - amount);
        Ok(())
    }

    /// Move `amount` of `token` from `from` to `to`.
    pub fn transfer(
        &mut self,
        from: Address,
        to: Address,
        token: Token,
        amount: Wad,
    ) -> Result<(), LedgerError> {
        if amount.is_zero() {
            return Ok(());
        }
        self.burn(from, token, amount)?;
        self.mint(to, token, amount);
        Ok(())
    }

    /// Open a checkpoint. Mutations after this call can be rolled back with
    /// [`Ledger::revert_checkpoint`] or made permanent with
    /// [`Ledger::commit_checkpoint`]. Checkpoints nest.
    pub fn begin_checkpoint(&mut self) {
        self.checkpoints.push(self.journal.len());
    }

    /// Discard every mutation performed since the most recent checkpoint.
    pub fn revert_checkpoint(&mut self) {
        let Some(mark) = self.checkpoints.pop() else {
            return;
        };
        while self.journal.len() > mark {
            let Some(entry) = self.journal.pop() else {
                break;
            };
            self.balances
                .insert((entry.account, entry.token), entry.previous);
        }
    }

    /// Accept every mutation performed since the most recent checkpoint.
    pub fn commit_checkpoint(&mut self) {
        if let Some(mark) = self.checkpoints.pop() {
            if self.checkpoints.is_empty() {
                self.journal.clear();
            } else {
                // Keep entries for the outer checkpoint: they still describe
                // the pre-state relative to that outer checkpoint.
                let _ = mark;
            }
        }
    }

    /// Whether a transaction scope is currently open.
    pub fn in_checkpoint(&self) -> bool {
        !self.checkpoints.is_empty()
    }

    /// All non-zero balances of an account.
    pub fn account_balances(&self, account: Address) -> Vec<(Token, Wad)> {
        let mut out: Vec<(Token, Wad)> = self
            .balances
            .iter()
            .filter(|((a, _), v)| *a == account && !v.is_zero())
            .map(|((_, t), v)| (*t, *v))
            .collect();
        out.sort_by_key(|(t, _)| *t);
        out
    }

    /// Number of distinct (account, token) entries (diagnostic).
    pub fn entry_count(&self) -> usize {
        self.balances.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(n: u64) -> Address {
        Address::from_seed(n)
    }

    #[test]
    fn mint_and_balance() {
        let mut ledger = Ledger::new();
        ledger.mint(addr(1), Token::DAI, Wad::from_int(100));
        assert_eq!(ledger.balance(addr(1), Token::DAI), Wad::from_int(100));
        assert_eq!(ledger.balance(addr(1), Token::ETH), Wad::ZERO);
    }

    #[test]
    fn transfer_moves_funds() {
        let mut ledger = Ledger::new();
        ledger.mint(addr(1), Token::ETH, Wad::from_int(5));
        ledger
            .transfer(addr(1), addr(2), Token::ETH, Wad::from_int(2))
            .unwrap();
        assert_eq!(ledger.balance(addr(1), Token::ETH), Wad::from_int(3));
        assert_eq!(ledger.balance(addr(2), Token::ETH), Wad::from_int(2));
    }

    #[test]
    fn transfer_insufficient_fails() {
        let mut ledger = Ledger::new();
        ledger.mint(addr(1), Token::ETH, Wad::from_int(1));
        let err = ledger
            .transfer(addr(1), addr(2), Token::ETH, Wad::from_int(2))
            .unwrap_err();
        match err {
            LedgerError::InsufficientBalance {
                requested,
                available,
                ..
            } => {
                assert_eq!(requested, Wad::from_int(2));
                assert_eq!(available, Wad::from_int(1));
            }
        }
        // Balance untouched by the failed transfer.
        assert_eq!(ledger.balance(addr(1), Token::ETH), Wad::from_int(1));
    }

    #[test]
    fn revert_restores_pre_state() {
        let mut ledger = Ledger::new();
        ledger.mint(addr(1), Token::DAI, Wad::from_int(10));
        ledger.begin_checkpoint();
        ledger.mint(addr(1), Token::DAI, Wad::from_int(90));
        ledger
            .transfer(addr(1), addr(2), Token::DAI, Wad::from_int(50))
            .unwrap();
        ledger.revert_checkpoint();
        assert_eq!(ledger.balance(addr(1), Token::DAI), Wad::from_int(10));
        assert_eq!(ledger.balance(addr(2), Token::DAI), Wad::ZERO);
        assert!(!ledger.in_checkpoint());
    }

    #[test]
    fn commit_keeps_changes() {
        let mut ledger = Ledger::new();
        ledger.begin_checkpoint();
        ledger.mint(addr(3), Token::USDC, Wad::from_int(7));
        ledger.commit_checkpoint();
        assert_eq!(ledger.balance(addr(3), Token::USDC), Wad::from_int(7));
    }

    #[test]
    fn nested_checkpoints_revert_inner_only() {
        let mut ledger = Ledger::new();
        ledger.mint(addr(1), Token::ETH, Wad::from_int(10));
        ledger.begin_checkpoint(); // outer
        ledger.burn(addr(1), Token::ETH, Wad::from_int(1)).unwrap();
        ledger.begin_checkpoint(); // inner
        ledger.burn(addr(1), Token::ETH, Wad::from_int(5)).unwrap();
        ledger.revert_checkpoint(); // undo inner burn
        assert_eq!(ledger.balance(addr(1), Token::ETH), Wad::from_int(9));
        ledger.revert_checkpoint(); // undo outer burn
        assert_eq!(ledger.balance(addr(1), Token::ETH), Wad::from_int(10));
    }

    #[test]
    fn nested_commit_then_outer_revert() {
        let mut ledger = Ledger::new();
        ledger.mint(addr(1), Token::ETH, Wad::from_int(10));
        ledger.begin_checkpoint(); // outer
        ledger.begin_checkpoint(); // inner
        ledger.burn(addr(1), Token::ETH, Wad::from_int(4)).unwrap();
        ledger.commit_checkpoint(); // inner committed
        ledger.revert_checkpoint(); // outer reverted: the inner change must also unwind
        assert_eq!(ledger.balance(addr(1), Token::ETH), Wad::from_int(10));
    }

    #[test]
    fn total_supply_and_account_balances() {
        let mut ledger = Ledger::new();
        ledger.mint(addr(1), Token::DAI, Wad::from_int(3));
        ledger.mint(addr(2), Token::DAI, Wad::from_int(4));
        ledger.mint(addr(1), Token::ETH, Wad::from_int(1));
        assert_eq!(ledger.total_supply(Token::DAI), Wad::from_int(7));
        let balances = ledger.account_balances(addr(1));
        assert_eq!(balances.len(), 2);
    }
}
