//! Block headers and transaction receipts.

use serde::{Deserialize, Serialize};

use defi_types::{Address, BlockNumber, Timestamp, TxHash};

use crate::events::ChainEvent;
use crate::gas::GweiPrice;

/// A produced block's header and aggregate statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BlockHeader {
    /// Block height.
    pub number: BlockNumber,
    /// Block timestamp (Unix seconds).
    pub timestamp: Timestamp,
    /// Total gas consumed by the included transactions.
    pub gas_used: u64,
    /// Block gas limit.
    pub gas_limit: u64,
    /// Median gas price of the included transactions (gwei); falls back to
    /// the market median when the block is empty.
    pub median_gas_price: GweiPrice,
    /// Number of included transactions.
    pub tx_count: u32,
    /// Number of transactions left pending in the mempool after this block.
    pub mempool_backlog: u32,
}

/// Receipt of an executed transaction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TxReceipt {
    /// Transaction hash.
    pub hash: TxHash,
    /// Sender address.
    pub sender: Address,
    /// Block the transaction was included in.
    pub block: BlockNumber,
    /// Index within the block.
    pub index: u32,
    /// Gas price paid (gwei).
    pub gas_price: GweiPrice,
    /// Gas consumed.
    pub gas_used: u64,
    /// Whether execution succeeded (failed transactions still pay gas, as on
    /// Ethereum).
    pub success: bool,
    /// Human-readable label of the action (diagnostics only).
    pub label: String,
    /// Events emitted during execution (empty if reverted).
    pub events: Vec<ChainEvent>,
}

impl TxReceipt {
    /// Transaction fee in ETH: `gas_used × gas_price`, with gas price in gwei.
    pub fn fee_eth(&self) -> f64 {
        self.gas_used as f64 * self.gas_price as f64 * 1e-9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fee_eth_computation() {
        let receipt = TxReceipt {
            hash: TxHash::derive(1, 0, 0),
            sender: Address::from_seed(1),
            block: 1,
            index: 0,
            gas_price: 100,      // gwei
            gas_used: 1_000_000, // gas
            success: true,
            label: "test".to_string(),
            events: Vec::new(),
        };
        // 1e6 gas * 100 gwei = 1e8 gwei = 0.1 ETH
        assert!((receipt.fee_eth() - 0.1).abs() < 1e-12);
    }
}
